//===- tests/resolver_test.cpp - Lexical-address resolution tests ----------===//
//
// Two layers:
//
//  * Unit tests of the resolver's address and frame-layout computation on
//    hand-written programs (coalescing rule, globals, unbound names, the
//    DAG refusal).
//
//  * Differential tests: over generated programs, the lexically-addressed
//    machine and the named-chain machine must produce the same observable
//    outcome — same value or same error text, same step count (the
//    transition relations are 1:1), and the same final monitor states —
//    under every evaluation strategy, with and without a monitor cascade.
//
//===----------------------------------------------------------------------===//

#include "analysis/Resolver.h"
#include "interp/Eval.h"
#include "monitors/Profiler.h"
#include "monitors/Tracer.h"
#include "semantics/Primitives.h"

#include "RandomProgram.h"

#include <gtest/gtest.h>

using namespace monsem;

namespace {

constexpr uint64_t Fuel = 500000;

std::unique_ptr<ParsedProgram> parseOrDie(std::string_view Src) {
  auto P = ParsedProgram::parse(Src);
  EXPECT_TRUE(P->ok()) << P->diags().str();
  return P;
}

const VarExpr *findVar(const Expr *E, std::string_view Name) {
  if (!E)
    return nullptr;
  switch (E->kind()) {
  case ExprKind::Const:
    return nullptr;
  case ExprKind::Var: {
    const auto *V = cast<VarExpr>(E);
    return V->Name.str() == Name ? V : nullptr;
  }
  case ExprKind::Lam:
    return findVar(cast<LamExpr>(E)->Body, Name);
  case ExprKind::If: {
    const auto *I = cast<IfExpr>(E);
    if (const VarExpr *V = findVar(I->Cond, Name))
      return V;
    if (const VarExpr *V = findVar(I->Then, Name))
      return V;
    return findVar(I->Else, Name);
  }
  case ExprKind::App: {
    const auto *A = cast<AppExpr>(E);
    if (const VarExpr *V = findVar(A->Fn, Name))
      return V;
    return findVar(A->Arg, Name);
  }
  case ExprKind::Letrec: {
    const auto *L = cast<LetrecExpr>(E);
    if (const VarExpr *V = findVar(L->Bound, Name))
      return V;
    return findVar(L->Body, Name);
  }
  case ExprKind::Prim1:
    return findVar(cast<Prim1Expr>(E)->Arg, Name);
  case ExprKind::Prim2: {
    const auto *P = cast<Prim2Expr>(E);
    if (const VarExpr *V = findVar(P->Lhs, Name))
      return V;
    return findVar(P->Rhs, Name);
  }
  case ExprKind::Annot:
    return findVar(cast<AnnotExpr>(E)->Inner, Name);
  }
  return nullptr;
}

const LetrecExpr *findLetrec(const Expr *E, std::string_view Name) {
  if (!E)
    return nullptr;
  switch (E->kind()) {
  case ExprKind::Letrec: {
    const auto *L = cast<LetrecExpr>(E);
    if (L->Name.str() == Name)
      return L;
    if (const LetrecExpr *R = findLetrec(L->Bound, Name))
      return R;
    return findLetrec(L->Body, Name);
  }
  case ExprKind::Lam:
    return findLetrec(cast<LamExpr>(E)->Body, Name);
  case ExprKind::App: {
    const auto *A = cast<AppExpr>(E);
    if (const LetrecExpr *R = findLetrec(A->Fn, Name))
      return R;
    return findLetrec(A->Arg, Name);
  }
  case ExprKind::If: {
    const auto *I = cast<IfExpr>(E);
    if (const LetrecExpr *R = findLetrec(I->Cond, Name))
      return R;
    if (const LetrecExpr *R = findLetrec(I->Then, Name))
      return R;
    return findLetrec(I->Else, Name);
  }
  case ExprKind::Prim1:
    return findLetrec(cast<Prim1Expr>(E)->Arg, Name);
  case ExprKind::Prim2: {
    const auto *P = cast<Prim2Expr>(E);
    if (const LetrecExpr *R = findLetrec(P->Lhs, Name))
      return R;
    return findLetrec(P->Rhs, Name);
  }
  case ExprKind::Annot:
    return findLetrec(cast<AnnotExpr>(E)->Inner, Name);
  default:
    return nullptr;
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Unit tests: addresses and frame layouts
//===----------------------------------------------------------------------===//

TEST(ResolverTest, FibAddresses) {
  auto P = parseOrDie("letrec fib = lambda n. if n < 2 then n else "
                      "fib (n - 1) + fib (n - 2) in fib 10");
  auto Res = resolveProgram(P->root());
  ASSERT_TRUE(Res->ok());

  // The top-level letrec coalesces into the root frame (slot 0); the
  // lambda owns the only other frame.
  ASSERT_EQ(Res->numShapes(), 2u);
  EXPECT_EQ(Res->rootShape()->numSlots(), 1u);
  EXPECT_EQ(Res->rootShape()->slotName(0).str(), "fib");

  const LetrecExpr *Fib = findLetrec(P->root(), "fib");
  ASSERT_NE(Fib, nullptr);
  EXPECT_EQ(Fib->Shape, nullptr) << "coalesced member, not a frame head";
  EXPECT_EQ(Fib->SlotIndex, 0u);

  const auto *Lam = cast<LamExpr>(Fib->Bound);
  ASSERT_NE(Lam->Shape, nullptr);
  EXPECT_EQ(Lam->Shape->numSlots(), 1u);
  EXPECT_EQ(Lam->Shape->slotName(0).str(), "n");

  // Inside the lambda body: `n` is in the current frame, `fib` one up.
  const VarExpr *N = findVar(Lam->Body, "n");
  ASSERT_NE(N, nullptr);
  EXPECT_EQ(N->Addr, VarExpr::AddrKind::Local);
  EXPECT_EQ(N->FrameDepth, 0u);
  EXPECT_EQ(N->SlotIndex, 0u);

  const VarExpr *FibRef = findVar(Lam->Body, "fib");
  ASSERT_NE(FibRef, nullptr);
  EXPECT_EQ(FibRef->Addr, VarExpr::AddrKind::Local);
  EXPECT_EQ(FibRef->FrameDepth, 1u);
  EXPECT_EQ(FibRef->SlotIndex, 0u);

  // In the letrec body `fib 10`, the reference stays in the root frame.
  const VarExpr *FibCall = findVar(Fib->Body, "fib");
  ASSERT_NE(FibCall, nullptr);
  EXPECT_EQ(FibCall->FrameDepth, 0u);
  EXPECT_EQ(FibCall->SlotIndex, 0u);
}

TEST(ResolverTest, LetrecChainCoalescesIntoLambdaFrame) {
  auto P = parseOrDie("lambda x. letrec a = x + 1 in letrec b = a + 1 in "
                      "x + a + b");
  auto Res = resolveProgram(P->root());
  ASSERT_TRUE(Res->ok());

  const auto *Lam = cast<LamExpr>(P->root());
  ASSERT_NE(Lam->Shape, nullptr);
  ASSERT_EQ(Lam->Shape->numSlots(), 3u);
  EXPECT_EQ(Lam->Shape->slotName(0).str(), "x");
  EXPECT_EQ(Lam->Shape->slotName(1).str(), "a");
  EXPECT_EQ(Lam->Shape->slotName(2).str(), "b");

  const LetrecExpr *A = findLetrec(P->root(), "a");
  const LetrecExpr *B = findLetrec(P->root(), "b");
  ASSERT_TRUE(A && B);
  EXPECT_EQ(A->Shape, nullptr);
  EXPECT_EQ(A->SlotIndex, 1u);
  EXPECT_EQ(B->Shape, nullptr);
  EXPECT_EQ(B->SlotIndex, 2u);

  // All three variables of the sum live in the same frame (depth 0).
  for (const char *Name : {"x", "a", "b"}) {
    const VarExpr *V = findVar(cast<LetrecExpr>(Lam->Body)->Body, Name);
    ASSERT_NE(V, nullptr) << Name;
    EXPECT_EQ(V->Addr, VarExpr::AddrKind::Local);
    EXPECT_EQ(V->FrameDepth, 0u) << Name;
  }
}

TEST(ResolverTest, ThunkablePositionsDoNotCoalesce) {
  // A letrec inside an application operand may be re-evaluated per
  // application under call-by-name: it must own its frame.
  auto P = parseOrDie("(lambda x. x) (letrec a = 1 in a)");
  auto Res = resolveProgram(P->root());
  ASSERT_TRUE(Res->ok());
  const LetrecExpr *A = findLetrec(P->root(), "a");
  ASSERT_NE(A, nullptr);
  ASSERT_NE(A->Shape, nullptr) << "operand letrec must be a frame head";
  EXPECT_EQ(A->Shape->slotName(0).str(), "a");

  // Same for a letrec inside a letrec's bound expression (thunked under
  // the lazy strategies).
  auto Q = parseOrDie("letrec f = (letrec g = 1 in g) in f");
  auto QRes = resolveProgram(Q->root());
  ASSERT_TRUE(QRes->ok());
  const LetrecExpr *G = findLetrec(Q->root(), "g");
  ASSERT_NE(G, nullptr);
  EXPECT_NE(G->Shape, nullptr);
}

TEST(ResolverTest, BranchesAndPrimOperandsDoCoalesce) {
  auto P = parseOrDie("lambda c. 1 + (if c then letrec a = 1 in a "
                      "else letrec b = 2 in b)");
  auto Res = resolveProgram(P->root());
  ASSERT_TRUE(Res->ok());
  const auto *Lam = cast<LamExpr>(P->root());
  ASSERT_NE(Lam->Shape, nullptr);
  // c, a, b share the lambda's frame; the untaken branch's slot stays
  // Unit at run time.
  EXPECT_EQ(Lam->Shape->numSlots(), 3u);
  const LetrecExpr *A = findLetrec(P->root(), "a");
  const LetrecExpr *B = findLetrec(P->root(), "b");
  ASSERT_TRUE(A && B);
  EXPECT_EQ(A->Shape, nullptr);
  EXPECT_EQ(B->Shape, nullptr);
  EXPECT_NE(A->SlotIndex, B->SlotIndex);
}

TEST(ResolverTest, GlobalsResolveIntoThePrimFrame) {
  auto P = parseOrDie("(lambda f. f (1 : 2 : [])) hd");
  auto Res = resolveProgram(P->root());
  ASSERT_TRUE(Res->ok());
  const VarExpr *Hd = findVar(P->root(), "hd");
  ASSERT_NE(Hd, nullptr);
  EXPECT_EQ(Hd->Addr, VarExpr::AddrKind::Global);
  EXPECT_EQ(primBindings()[Hd->SlotIndex].Name.str(), "hd");
}

TEST(ResolverTest, UserBindingShadowsPrimitive) {
  auto P = parseOrDie("(lambda hd. hd) 3");
  auto Res = resolveProgram(P->root());
  ASSERT_TRUE(Res->ok());
  const VarExpr *Hd = findVar(P->root(), "hd");
  ASSERT_NE(Hd, nullptr);
  EXPECT_EQ(Hd->Addr, VarExpr::AddrKind::Local);
}

TEST(ResolverTest, UnboundVariableIsStatic) {
  auto P = parseOrDie("lambda x. y");
  auto Res = resolveProgram(P->root());
  ASSERT_TRUE(Res->ok());
  const VarExpr *Y = findVar(P->root(), "y");
  ASSERT_NE(Y, nullptr);
  EXPECT_EQ(Y->Addr, VarExpr::AddrKind::Unbound);

  // The run-time error text matches the named-chain machine's.
  auto Q = parseOrDie("y");
  RunOptions Legacy;
  Legacy.Lexical = false;
  RunResult A = evaluate(Q->root(), Legacy);
  RunResult B = evaluate(Q->root(), RunOptions());
  EXPECT_FALSE(A.Ok);
  EXPECT_FALSE(B.Ok);
  EXPECT_EQ(A.Error, B.Error);
}

TEST(ResolverTest, SharedNodesAreRefused) {
  AstContext Ctx;
  const Expr *Shared = Ctx.mkInt(1);
  const Expr *Dag = Ctx.mkPrim2(Prim2Op::Add, Shared, Shared);
  auto Res = resolveProgram(Dag);
  EXPECT_FALSE(Res->ok());
  // evaluate() falls back to the named chain and still runs the program.
  RunResult R = evaluate(Dag, RunOptions());
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.IntValue, 2);
}

//===----------------------------------------------------------------------===//
// Differential tests: resolved vs named-chain machine
//===----------------------------------------------------------------------===//

namespace {

RunResult runOne(const Expr *Prog, Strategy S, bool Lexical,
                 const Cascade *C) {
  if (C)
    return evaluate(*C & StrategyTag{S} & maxSteps(Fuel) &
                        (Lexical ? kLexicalEnv : kNamedEnv),
                    Prog);
  RunOptions Opts;
  Opts.Strat = S;
  Opts.MaxSteps = Fuel;
  Opts.Lexical = Lexical;
  return evaluate(Prog, Opts);
}

void checkProgram(const Expr *Prog, const Cascade *C) {
  ASSERT_TRUE(resolveProgram(Prog)->ok());
  for (Strategy S :
       {Strategy::Strict, Strategy::CallByName, Strategy::CallByNeed}) {
    RunResult Legacy = runOne(Prog, S, /*Lexical=*/false, C);
    RunResult Resolved = runOne(Prog, S, /*Lexical=*/true, C);
    EXPECT_TRUE(Legacy.sameOutcome(Resolved))
        << strategyName(S) << (C ? " monitored" : "") << "\n  legacy:   "
        << (Legacy.Ok ? Legacy.ValueText : Legacy.Error)
        << "\n  resolved: "
        << (Resolved.Ok ? Resolved.ValueText : Resolved.Error);
    // The two machines' transition relations are 1:1.
    EXPECT_EQ(Legacy.Steps, Resolved.Steps) << strategyName(S);
    if (C) {
      ASSERT_EQ(Legacy.FinalStates.size(), Resolved.FinalStates.size());
      for (size_t I = 0; I < Legacy.FinalStates.size(); ++I)
        EXPECT_EQ(Legacy.FinalStates[I]->str(),
                  Resolved.FinalStates[I]->str());
    }
  }
}

} // namespace

class ResolverDifferentialTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(ResolverDifferentialTest, SameOutcomeAllStrategies) {
  AstContext Ctx;
  const Expr *Prog = monsem::testing::genProgram(Ctx, GetParam());
  checkProgram(Prog, nullptr);
}

TEST_P(ResolverDifferentialTest, SameOutcomeUnderMonitorCascade) {
  AstContext Ctx;
  const Expr *Prog = monsem::testing::genProgram(Ctx, GetParam());
  CountingProfiler Count;
  Tracer Trace;
  Cascade C = cascadeOf({&Count, &Trace});
  checkProgram(Prog, &C);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ResolverDifferentialTest,
                         ::testing::Range(0u, 120u));

TEST(ResolverDifferentialTest, TracerSeesNamedBindingsOnFrames) {
  // The tracer reads the environment *by name* through EnvView; its final
  // state must be identical on the named chain and on flat frames.
  auto P = parseOrDie("letrec fac = lambda n. {fac(n)}: if n < 2 then 1 "
                      "else n * fac (n - 1) in fac 6");
  Tracer Trace;
  Cascade C = cascadeOf({&Trace});
  checkProgram(P->root(), &C);
}

TEST(ResolverDifferentialTest, HandWrittenCornerCases) {
  const char *Programs[] = {
      // Deep recursion through a coalesced letrec.
      "letrec down = lambda n. if n = 0 then 0 else down (n - 1) in "
      "down 2000",
      // Self-reference before initialization (error parity).
      "letrec x = x + 1 in x",
      // Letrec under a branch, taken and untaken.
      "lambda c. if c then letrec a = 1 in a else 2",
      // Closure escaping the frame whose slot it reads.
      "letrec mk = lambda x. lambda y. x + y in (mk 1) 2",
      // Higher-order primitive and shadowing.
      "(lambda hd. hd 1) (lambda z. z + 1)",
      // Black hole / infinite dependency under laziness.
      "letrec w = w in w",
  };
  for (const char *Src : Programs) {
    auto P = parseOrDie(Src);
    checkProgram(P->root(), nullptr);
  }
}
