//===- tests/lexer_test.cpp - Lexer unit tests -----------------------------===//

#include "syntax/Lexer.h"

#include <gtest/gtest.h>

using namespace monsem;

namespace {

std::vector<Token> lexAll(std::string_view Src, DiagnosticSink &Diags) {
  Lexer L(Src, Diags);
  std::vector<Token> Out;
  while (true) {
    Token T = L.next();
    bool Eof = T.is(TokenKind::Eof);
    Out.push_back(std::move(T));
    if (Eof)
      break;
  }
  return Out;
}

std::vector<TokenKind> kindsOf(std::string_view Src) {
  DiagnosticSink D;
  std::vector<TokenKind> Ks;
  for (const Token &T : lexAll(Src, D))
    Ks.push_back(T.Kind);
  return Ks;
}

} // namespace

TEST(LexerTest, Keywords) {
  auto Ks = kindsOf("lambda if then else letrec let in true false and or");
  std::vector<TokenKind> Want = {
      TokenKind::KwLambda, TokenKind::KwIf,   TokenKind::KwThen,
      TokenKind::KwElse,   TokenKind::KwLetrec, TokenKind::KwLet,
      TokenKind::KwIn,     TokenKind::KwTrue, TokenKind::KwFalse,
      TokenKind::KwAnd,    TokenKind::KwOr,   TokenKind::Eof};
  EXPECT_EQ(Ks, Want);
}

TEST(LexerTest, OperatorsAndPunctuation) {
  auto Ks = kindsOf("( ) [ ] { } , . : ; := = == <> < <= > >= + - * / %");
  std::vector<TokenKind> Want = {
      TokenKind::LParen,  TokenKind::RParen,   TokenKind::LBracket,
      TokenKind::RBracket, TokenKind::LBrace,  TokenKind::RBrace,
      TokenKind::Comma,   TokenKind::Dot,      TokenKind::Colon,
      TokenKind::Semi,    TokenKind::Assign,   TokenKind::Eq,
      TokenKind::Eq,      TokenKind::Ne,       TokenKind::Lt,
      TokenKind::Le,      TokenKind::Gt,       TokenKind::Ge,
      TokenKind::Plus,    TokenKind::Minus,    TokenKind::Star,
      TokenKind::Slash,   TokenKind::Percent,  TokenKind::Eof};
  EXPECT_EQ(Ks, Want);
}

TEST(LexerTest, IntegerLiterals) {
  DiagnosticSink D;
  auto Ts = lexAll("0 42 123456789", D);
  ASSERT_EQ(Ts.size(), 4u);
  EXPECT_EQ(Ts[0].IntValue, 0);
  EXPECT_EQ(Ts[1].IntValue, 42);
  EXPECT_EQ(Ts[2].IntValue, 123456789);
  EXPECT_FALSE(D.hasErrors());
}

TEST(LexerTest, IntegerOverflowDiagnosed) {
  DiagnosticSink D;
  lexAll("99999999999999999999999999", D);
  EXPECT_TRUE(D.hasErrors());
}

TEST(LexerTest, IdentifiersWithPrimesAndQuestionMarks) {
  DiagnosticSink D;
  auto Ts = lexAll("foo x' sorted? _tmp fac1", D);
  ASSERT_EQ(Ts.size(), 6u);
  EXPECT_EQ(Ts[0].Ident.str(), "foo");
  EXPECT_EQ(Ts[1].Ident.str(), "x'");
  EXPECT_EQ(Ts[2].Ident.str(), "sorted?");
  EXPECT_EQ(Ts[3].Ident.str(), "_tmp");
  EXPECT_EQ(Ts[4].Ident.str(), "fac1");
}

TEST(LexerTest, StringLiteralsWithEscapes) {
  DiagnosticSink D;
  auto Ts = lexAll("\"hello\" \"a\\nb\" \"q\\\"q\"", D);
  ASSERT_GE(Ts.size(), 3u);
  EXPECT_EQ(Ts[0].StrValue, "hello");
  EXPECT_EQ(Ts[1].StrValue, "a\nb");
  EXPECT_EQ(Ts[2].StrValue, "q\"q");
  EXPECT_FALSE(D.hasErrors());
}

TEST(LexerTest, UnterminatedStringDiagnosed) {
  DiagnosticSink D;
  lexAll("\"oops", D);
  EXPECT_TRUE(D.hasErrors());
}

TEST(LexerTest, CommentsAreSkipped) {
  auto Ks = kindsOf("1 -- a comment + * letrec\n2");
  std::vector<TokenKind> Want = {TokenKind::IntLit, TokenKind::IntLit,
                                 TokenKind::Eof};
  EXPECT_EQ(Ks, Want);
}

TEST(LexerTest, BackslashIsLambda) {
  auto Ks = kindsOf("\\x. x");
  std::vector<TokenKind> Want = {TokenKind::KwLambda, TokenKind::Ident,
                                 TokenKind::Dot, TokenKind::Ident,
                                 TokenKind::Eof};
  EXPECT_EQ(Ks, Want);
}

TEST(LexerTest, SourceLocations) {
  DiagnosticSink D;
  auto Ts = lexAll("ab\n  cd", D);
  ASSERT_GE(Ts.size(), 2u);
  EXPECT_EQ(Ts[0].Loc.Line, 1u);
  EXPECT_EQ(Ts[0].Loc.Col, 1u);
  EXPECT_EQ(Ts[1].Loc.Line, 2u);
  EXPECT_EQ(Ts[1].Loc.Col, 3u);
}

TEST(LexerTest, PeekDoesNotConsume) {
  DiagnosticSink D;
  Lexer L("1 2", D);
  EXPECT_EQ(L.peek().IntValue, 1);
  EXPECT_EQ(L.peek().IntValue, 1);
  EXPECT_EQ(L.next().IntValue, 1);
  EXPECT_EQ(L.next().IntValue, 2);
  EXPECT_TRUE(L.next().is(TokenKind::Eof));
}

TEST(LexerTest, UnexpectedCharacterDiagnosed) {
  DiagnosticSink D;
  lexAll("1 @ 2", D);
  EXPECT_TRUE(D.hasErrors());
}
