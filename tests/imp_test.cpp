//===- tests/imp_test.cpp - Imperative language module ---------------------===//

#include "imp/ImpMachine.h"
#include "imp/ImpMonitors.h"
#include "imp/ImpParser.h"

#include <gtest/gtest.h>

using namespace monsem;

namespace {

struct ParsedImp {
  ImpContext Ctx;
  DiagnosticSink Diags;
  const Cmd *C = nullptr;
};

std::unique_ptr<ParsedImp> parseImp(std::string_view Src) {
  auto P = std::make_unique<ParsedImp>();
  P->C = parseImpProgram(P->Ctx, Src, P->Diags);
  return P;
}

std::unique_ptr<ParsedImp> parseImpOk(std::string_view Src) {
  auto P = parseImp(Src);
  EXPECT_NE(P->C, nullptr) << P->Diags.str();
  return P;
}

} // namespace

//===----------------------------------------------------------------------===//
// Parsing and printing
//===----------------------------------------------------------------------===//

TEST(ImpParserTest, BasicForms) {
  EXPECT_EQ(printCmd(parseImpOk("skip")->C), "skip");
  EXPECT_EQ(printCmd(parseImpOk("x := 1 + 2")->C), "x := 1 + 2");
  EXPECT_EQ(printCmd(parseImpOk("x := 1; y := 2")->C), "x := 1; y := 2");
  EXPECT_EQ(printCmd(parseImpOk("print x * 2")->C), "print x * 2");
  EXPECT_EQ(printCmd(parseImpOk("if x < 1 then skip else y := 2 end")->C),
            "if x < 1 then skip else y := 2 end");
  EXPECT_EQ(printCmd(parseImpOk("if x < 1 then skip end")->C),
            "if x < 1 then skip else skip end");
  EXPECT_EQ(printCmd(parseImpOk("while x > 0 do x := x - 1 end")->C),
            "while x > 0 do x := x - 1 end");
  EXPECT_EQ(printCmd(parseImpOk("{p}: x := 1")->C), "{p}: x := 1");
  EXPECT_EQ(printCmd(parseImpOk("begin x := 1; y := 2 end; z := 3")->C),
            "x := 1; y := 2; z := 3");
}

TEST(ImpParserTest, Errors) {
  EXPECT_TRUE(parseImp("x = 1")->Diags.hasErrors()); // := not =
  EXPECT_TRUE(parseImp("while x do skip")->Diags.hasErrors()); // no end
  EXPECT_TRUE(parseImp("if x then skip")->Diags.hasErrors());
  EXPECT_TRUE(parseImp("x := ")->Diags.hasErrors());
  EXPECT_TRUE(parseImp("{}: skip")->Diags.hasErrors());
}

//===----------------------------------------------------------------------===//
// Standard semantics
//===----------------------------------------------------------------------===//

TEST(ImpMachineTest, AssignAndPrint) {
  auto P = parseImpOk("x := 2 + 3; print x; print x * x");
  ImpRunResult R = runImp(P->C);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<std::string>{"5", "25"}));
  EXPECT_EQ(R.Store.at("x"), "5");
}

TEST(ImpMachineTest, WhileLoopFactorial) {
  auto P = parseImpOk("n := 6; acc := 1; "
                      "while n > 0 do acc := acc * n; n := n - 1 end; "
                      "print acc");
  ImpRunResult R = runImp(P->C);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<std::string>{"720"}));
  EXPECT_EQ(R.Store.at("n"), "0");
}

TEST(ImpMachineTest, Gcd) {
  auto P = parseImpOk("a := 252; b := 105; "
                      "while a <> b do "
                      "  if a > b then a := a - b else b := b - a end "
                      "end; print a");
  ImpRunResult R = runImp(P->C);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<std::string>{"21"}));
}

TEST(ImpMachineTest, ExpressionSubLanguageIsFullLLambda) {
  // The expression language has lambdas, letrec, and lists.
  auto P = parseImpOk(
      "xs := [3, 1, 2]; "
      "total := (letrec sum = lambda l. if l = [] then 0 else "
      "hd l + sum (tl l) in sum xs); "
      "print total");
  ImpRunResult R = runImp(P->C);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<std::string>{"6"}));
  EXPECT_EQ(R.Store.at("xs"), "[3, 1, 2]");
}

TEST(ImpMachineTest, FunctionsAreStorable) {
  auto P = parseImpOk("f := lambda x. x * 2; y := f 21; print y");
  ImpRunResult R = runImp(P->C);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<std::string>{"42"}));
}

TEST(ImpMachineTest, RuntimeErrors) {
  EXPECT_NE(runImp(parseImpOk("x := y + 1")->C)
                .Error.find("not initialized"),
            std::string::npos);
  EXPECT_NE(runImp(parseImpOk("x := 1 / 0")->C)
                .Error.find("division by zero"),
            std::string::npos);
  EXPECT_NE(runImp(parseImpOk("while 3 do skip end")->C)
                .Error.find("boolean"),
            std::string::npos);
  EXPECT_NE(runImp(parseImpOk("if [] then skip end")->C)
                .Error.find("boolean"),
            std::string::npos);
}

TEST(ImpMachineTest, FuelBoundsInfiniteLoops) {
  auto P = parseImpOk("x := 1; while true do x := x + 1 end");
  ImpRunOptions Opts;
  Opts.MaxSteps = 10000;
  ImpRunResult R = runImp(P->C, Opts);
  EXPECT_TRUE(R.FuelExhausted);
}

//===----------------------------------------------------------------------===//
// Monitoring semantics
//===----------------------------------------------------------------------===//

TEST(ImpMonitorTest, StmtProfilerCountsLoopBodies) {
  auto P = parseImpOk("n := 5; "
                      "while n > 0 do {body}: n := n - 1 end");
  ImpStmtProfiler Prof;
  ImpCascade C;
  C.use(Prof);
  ImpRunResult R = runImp(C, P->C);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(ImpStmtProfiler::state(*R.FinalStates[0]).count("body"), 5u);
}

TEST(ImpMonitorTest, WatchMonitorLogsChanges) {
  auto P = parseImpOk("a := 10; b := 0; "
                      "{s1}: a := a - 4; "
                      "{s2}: b := b + 1; "
                      "{s3}: a := a - 6");
  ImpWatchMonitor Watch("a");
  ImpCascade C;
  C.use(Watch);
  ImpRunResult R = runImp(C, P->C);
  ASSERT_TRUE(R.Ok) << R.Error;
  const auto &Lines = ImpWatchMonitor::state(*R.FinalStates[0]).Chan.lines();
  ASSERT_EQ(Lines.size(), 2u) << "only s1 and s3 change a";
  EXPECT_EQ(Lines[0], "s1: a 10 -> 6");
  EXPECT_EQ(Lines[1], "s3: a 6 -> 0");
}

TEST(ImpMonitorTest, TracerShowsStoreSnapshots) {
  auto P = parseImpOk("x := 1; {outer}: begin {inner}: x := 2; x := 3 end");
  ImpTracer Trc;
  ImpCascade C;
  C.use(Trc);
  ImpRunResult R = runImp(C, P->C);
  ASSERT_TRUE(R.Ok) << R.Error;
  const auto &Lines = ImpTracer::state(*R.FinalStates[0]).Chan.lines();
  ASSERT_EQ(Lines.size(), 4u);
  EXPECT_EQ(Lines[0], "-> outer [x = 1]");
  EXPECT_EQ(Lines[1], "  -> inner [x = 1]");
  EXPECT_EQ(Lines[2], "  <- inner [x = 2]");
  EXPECT_EQ(Lines[3], "<- outer [x = 3]");
}

TEST(ImpMonitorTest, InvariantDemon) {
  // Invariant: a + b stays 100.
  Symbol A = Symbol::intern("a"), B = Symbol::intern("b");
  ImpInvariantDemon D("demon", [A, B](const ImpStoreView &S) {
    auto VA = S.lookup(A), VB = S.lookup(B);
    if (!VA || !VB || !VA->is(ValueKind::Int) || !VB->is(ValueKind::Int))
      return true;
    return VA->asInt() + VB->asInt() == 100;
  });
  auto P = parseImpOk("a := 60; b := 40; "
                      "{t1}: begin a := 50; b := 50 end; "
                      "{t2}: a := 70; "
                      "{t3}: b := 30");
  ImpCascade C;
  C.use(D);
  ImpRunResult R = runImp(C, P->C);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.FinalStates[0]->str(), "{t2}");
}

TEST(ImpMonitorTest, CascadeWithQualifiers) {
  auto P = parseImpOk("n := 3; "
                      "while n > 0 do "
                      "{profile:body}: {watch:body}: n := n - 1 end");
  ImpStmtProfiler Prof;
  ImpWatchMonitor Watch("n");
  ImpCascade C;
  C.use(Prof).use(Watch);
  ImpRunResult R = runImp(C, P->C);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(ImpStmtProfiler::state(*R.FinalStates[0]).count("body"), 3u);
  EXPECT_EQ(ImpWatchMonitor::state(*R.FinalStates[1]).Chan.numLines(), 3u);
}

TEST(ImpMonitorTest, AmbiguousCascadeRejected) {
  auto P = parseImpOk("{p}: skip");
  ImpStmtProfiler Prof;
  ImpInvariantDemon D("demon", [](const ImpStoreView &) { return true; });
  ImpCascade C;
  C.use(Prof).use(D);
  ImpRunResult R = runImp(C, P->C);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("two monitors"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Soundness (Theorem 7.7 for L_imp)
//===----------------------------------------------------------------------===//

TEST(ImpSoundnessTest, MonitorsPreserveOutputAndStore) {
  const char *Programs[] = {
      "n := 6; acc := 1; while n > 0 do {body}: begin acc := acc * n; "
      "n := n - 1 end end; print acc",
      "a := 252; b := 105; while a <> b do {step}: if a > b then "
      "a := a - b else b := b - a end end; print a",
      "x := 0; {p}: while x < 10 do {q}: x := x + 3 end; print x",
  };
  ImpStmtProfiler Prof;
  ImpTracer Trc;
  ImpWatchMonitor Watch("x");
  for (const char *Src : Programs) {
    auto P = parseImpOk(Src);
    ImpRunResult Std = runImp(P->C);
    for (const ImpMonitor *M :
         {static_cast<const ImpMonitor *>(&Prof),
          static_cast<const ImpMonitor *>(&Trc)}) {
      ImpCascade C;
      C.use(*M);
      ImpRunResult Mon = runImp(C, P->C);
      EXPECT_TRUE(Mon.sameOutcome(Std)) << Src << " under " << M->name();
    }
  }
}

TEST(ImpSoundnessTest, StrippedProgramAgrees) {
  auto P = parseImpOk("n := 4; while n > 0 do {b}: n := n - 1 end; print n");
  const Cmd *Plain = stripCmdAnnotations(P->Ctx, P->C);
  std::vector<const Annotation *> Anns;
  collectCmdAnnotations(Plain, Anns);
  EXPECT_TRUE(Anns.empty());
  EXPECT_TRUE(runImp(P->C).sameOutcome(runImp(Plain)));
}

//===----------------------------------------------------------------------===//
// read: the program input stream
//===----------------------------------------------------------------------===//

TEST(ImpReadTest, ConsumesInputInOrder) {
  auto P = parseImpOk("read a; read b; print a + b; print a * b");
  ImpRunOptions Opts;
  Opts.Input = {6, 7};
  ImpRunResult R = runImp(P->C, Opts);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<std::string>{"13", "42"}));
}

TEST(ImpReadTest, ExhaustedInputIsAnError) {
  auto P = parseImpOk("read a; read b");
  ImpRunOptions Opts;
  Opts.Input = {1};
  ImpRunResult R = runImp(P->C, Opts);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("input stream exhausted"), std::string::npos);
}

TEST(ImpReadTest, ReadInLoops) {
  // Sum as many inputs as the first value says.
  auto P = parseImpOk("read n; acc := 0; "
                      "while n > 0 do read x; acc := acc + x; n := n - 1 "
                      "end; print acc");
  ImpRunOptions Opts;
  Opts.Input = {3, 10, 20, 12};
  ImpRunResult R = runImp(P->C, Opts);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<std::string>{"42"}));
}

TEST(ImpReadTest, PrintsAndStripsCorrectly) {
  auto P = parseImpOk("{r}: read a; print a");
  EXPECT_EQ(printCmd(P->C), "{r}: read a; print a");
  const Cmd *Plain = stripCmdAnnotations(P->Ctx, P->C);
  EXPECT_EQ(printCmd(Plain), "read a; print a");
}

TEST(ImpReadTest, ReadIsNotAReservedWord) {
  auto P = parseImpOk("read := 5; print read");
  ImpRunResult R = runImp(P->C);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<std::string>{"5"}));
}

TEST(ImpReadTest, MonitorsObserveReadValues) {
  auto P = parseImpOk("{r}: read a; {r2}: read a");
  ImpWatchMonitor Watch("a");
  ImpCascade C;
  C.use(Watch);
  ImpRunOptions Opts;
  Opts.Input = {1, 2};
  ImpRunResult R = runImp(C, P->C, Opts);
  ASSERT_TRUE(R.Ok) << R.Error;
  const auto &Lines = ImpWatchMonitor::state(*R.FinalStates[0]).Chan.lines();
  ASSERT_EQ(Lines.size(), 2u);
  EXPECT_EQ(Lines[0], "r: a ? -> 1");
  EXPECT_EQ(Lines[1], "r2: a 1 -> 2");
}
