//===- tests/toolbox_test.cpp - Monitor toolbox unit tests -----------------===//

#include "interp/Eval.h"
#include "monitors/Collecting.h"
#include "monitors/Coverage.h"
#include "monitors/Demon.h"
#include "monitors/Profiler.h"
#include "monitors/Stepper.h"
#include "monitors/Tracer.h"
#include "syntax/Annotator.h"

#include <gtest/gtest.h>

using namespace monsem;

namespace {

std::unique_ptr<ParsedProgram> parseOk(std::string_view Src) {
  auto P = ParsedProgram::parse(Src);
  EXPECT_TRUE(P->ok()) << P->diags().str();
  return P;
}

RunResult runWith(const Monitor &M, const Expr *E) {
  // A single monitor is already an EvalMode; exercise the unified entry.
  return evaluate(EvalMode(M), E);
}

Value listOf(Arena &A, std::initializer_list<int64_t> Xs) {
  Value V = Value::mkNil();
  std::vector<int64_t> R(Xs);
  for (size_t I = R.size(); I-- > 0;)
    V = Value::mkCell(A.create<Cell>(Value::mkInt(R[I]), V));
  return V;
}

} // namespace

//===----------------------------------------------------------------------===//
// Profilers
//===----------------------------------------------------------------------===//

TEST(CountingProfilerTest, CustomLabels) {
  auto P = parseOk("({yes}: 1) + ({no}: 2) + ({yes}: 3)");
  CountingProfiler M("yes", "no");
  RunResult R = runWith(M, P->root());
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.FinalStates[0]->str(), "<2, 1>");
}

TEST(CountingProfilerTest, IgnoresOtherLabels) {
  auto P = parseOk("({A}: 1) + ({other}: 2)");
  CountingProfiler M;
  RunResult R = runWith(M, P->root());
  EXPECT_EQ(CountingProfiler::state(*R.FinalStates[0]).CountA, 1u);
  EXPECT_EQ(CountingProfiler::state(*R.FinalStates[0]).CountB, 0u);
}

TEST(CallProfilerTest, CountsOnlyEvaluations) {
  // A function defined but never called has no counter entry (incCtr
  // initializes on first use).
  auto P = parseOk("letrec unused = lambda x. {unused}: x in "
                   "letrec used = lambda x. {used}: x in used 1");
  CallProfiler M;
  RunResult R = runWith(M, P->root());
  const auto &S = CallProfiler::state(*R.FinalStates[0]);
  EXPECT_EQ(S.count("used"), 1u);
  EXPECT_EQ(S.count("unused"), 0u);
  EXPECT_EQ(S.Counters.count("unused"), 0u);
}

TEST(CallProfilerTest, WithAutomaticAnnotation) {
  auto P = parseOk("letrec fib = lambda n. if n < 2 then n else "
                   "fib (n - 1) + fib (n - 2) in fib 10");
  const Expr *Ann = annotateFunctionBodies(P->context(), P->root(), {});
  CallProfiler M;
  RunResult R = runWith(M, Ann);
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.IntValue, 55);
  // fib is called 177 times for fib(10).
  EXPECT_EQ(CallProfiler::state(*R.FinalStates[0]).count("fib"), 177u);
}

//===----------------------------------------------------------------------===//
// Tracer
//===----------------------------------------------------------------------===//

TEST(TracerTest, RendersListsAndBooleans) {
  auto P = parseOk("letrec f = lambda l. {f(l)}: null l in f [1, 2]");
  Tracer M;
  RunResult R = runWith(M, P->root());
  ASSERT_TRUE(R.Ok);
  const auto &Lines = Tracer::state(*R.FinalStates[0]).Chan.lines();
  ASSERT_EQ(Lines.size(), 2u);
  EXPECT_EQ(Lines[0], "[F receives ([1, 2])]");
  EXPECT_EQ(Lines[1], "[F returns False]");
}

TEST(TracerTest, UnboundParamRendersQuestionMark) {
  auto P = parseOk("{f(zz)}: 1");
  Tracer M;
  RunResult R = runWith(M, P->root());
  EXPECT_EQ(Tracer::state(*R.FinalStates[0]).Chan.lines()[0],
            "[F receives (?)]");
}

TEST(TracerTest, LevelReturnsToZero) {
  auto P = parseOk("letrec f = lambda n. {f(n)}: if n = 0 then 0 else "
                   "f (n - 1) in f 5");
  Tracer M;
  RunResult R = runWith(M, P->root());
  EXPECT_EQ(Tracer::state(*R.FinalStates[0]).Level, 0);
  EXPECT_EQ(Tracer::state(*R.FinalStates[0]).Chan.numLines(), 12u);
}

//===----------------------------------------------------------------------===//
// Demon
//===----------------------------------------------------------------------===//

TEST(DemonTest, SortedPredicate) {
  Arena A;
  EXPECT_TRUE(isSortedList(Value::mkNil()));
  EXPECT_TRUE(isSortedList(listOf(A, {1})));
  EXPECT_TRUE(isSortedList(listOf(A, {1, 1, 2, 9})));
  EXPECT_FALSE(isSortedList(listOf(A, {2, 1})));
  EXPECT_FALSE(isSortedList(listOf(A, {1, 5, 4})));
  EXPECT_TRUE(isSortedList(Value::mkInt(3))) << "non-lists vacuously sorted";
}

TEST(DemonTest, CustomPredicate) {
  // A demon that fires on negative results.
  Demon Neg("negdemon", [](Value V) {
    return V.is(ValueKind::Int) && V.asInt() < 0;
  });
  auto P = parseOk("({a}: (1 - 5)) + ({b}: 3)");
  RunResult R = runWith(Neg, P->root());
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.FinalStates[0]->str(), "{a}");
}

TEST(DemonTest, FiresOncePerLabelEvenIfRepeated) {
  Demon Neg("negdemon", [](Value V) {
    return V.is(ValueKind::Int) && V.asInt() < 0;
  });
  auto P = parseOk("letrec f = lambda n. if n = 0 then 0 else "
                   "({neg}: (0 - n)) + f (n - 1) in f 3");
  RunResult R = runWith(Neg, P->root());
  EXPECT_EQ(R.FinalStates[0]->str(), "{neg}");
}

//===----------------------------------------------------------------------===//
// Collecting monitor
//===----------------------------------------------------------------------===//

TEST(CollectingTest, CollectsDistinctValues) {
  auto P = parseOk("letrec f = lambda n. if n = 0 then 0 else "
                   "({v}: n % 2) + f (n - 1) in f 6");
  CollectingMonitor M;
  RunResult R = runWith(M, P->root());
  const auto *S = CollectingMonitor::state(*R.FinalStates[0]).setFor("v");
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(*S, (std::set<std::string>{"0", "1"}));
}

TEST(CollectingTest, CollectsListsAndBooleans) {
  auto P = parseOk("({l}: [1, 2]) = ({l}: [])");
  CollectingMonitor M;
  RunResult R = runWith(M, P->root());
  const auto *S = CollectingMonitor::state(*R.FinalStates[0]).setFor("l");
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(*S, (std::set<std::string>{"[]", "[1, 2]"}));
}

//===----------------------------------------------------------------------===//
// Stepper
//===----------------------------------------------------------------------===//

TEST(StepperTest, LogsEnterAndExit) {
  auto P = parseOk("{a}: ({b}: 1) + 2");
  Stepper M;
  RunResult R = runWith(M, P->root());
  const auto &Lines = Stepper::state(*R.FinalStates[0]).Chan.lines();
  ASSERT_EQ(Lines.size(), 4u);
  EXPECT_EQ(Lines[0], "step 1: enter a");
  EXPECT_EQ(Lines[1], "step 2: enter b");
  EXPECT_EQ(Lines[2], "step 3: exit b = 1");
  EXPECT_EQ(Lines[3], "step 4: exit a = 3");
}

TEST(StepperTest, PrintsExpressionsWhenAsked) {
  auto P = parseOk("{a}: 1 + 2");
  Stepper M(/*PrintExprs=*/true);
  RunResult R = runWith(M, P->root());
  EXPECT_NE(Stepper::state(*R.FinalStates[0]).Chan.lines()[0].find("1 + 2"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// Coverage monitor
//===----------------------------------------------------------------------===//

TEST(CoverageTest, ReportsHitPoints) {
  auto P = parseOk("letrec f = lambda n. if n < 0 then f 1 else n in f 5");
  unsigned NumLabels = 0;
  const Expr *Lab =
      labelProgramPoints(P->context(), P->root(), "p", Symbol(), &NumLabels);
  ASSERT_EQ(NumLabels, 2u); // `f 1` (dead) and `f 5`.
  CoverageMonitor M(NumLabels);
  RunResult R = runWith(M, Lab);
  ASSERT_TRUE(R.Ok);
  const auto &S = CoverageMonitor::state(*R.FinalStates[0]);
  EXPECT_EQ(S.Hit.size(), 1u) << "the n<0 branch never runs";
  EXPECT_DOUBLE_EQ(S.ratio(), 0.5);
  EXPECT_EQ(S.str(), "1/2 points hit (1 events)");
}

TEST(CoverageTest, CountsRepeatHits) {
  auto P = parseOk("letrec f = lambda n. if n = 0 then 0 else "
                   "{body}: f (n - 1) in f 4");
  CoverageMonitor M;
  RunResult R = runWith(M, P->root());
  const auto &S = CoverageMonitor::state(*R.FinalStates[0]);
  EXPECT_EQ(S.Hit.size(), 1u);
  EXPECT_EQ(S.TotalHits, 4u);
}
