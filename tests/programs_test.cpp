//===- tests/programs_test.cpp - Sample-program corpus ---------------------===//
//
// Runs every shipped sample program (examples/programs) through all the
// evaluators and checks they agree — an end-to-end differential test over
// realistic programs rather than generated ones.
//
//===----------------------------------------------------------------------===//

#include "compile/VM.h"
#include "imp/ImpMachine.h"
#include "imp/ImpParser.h"
#include "interp/Direct.h"
#include "interp/Eval.h"
#include "monitors/Profiler.h"
#include "pe/PartialEval.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace monsem;

#ifndef MONSEM_SOURCE_DIR
#error "MONSEM_SOURCE_DIR must be defined by the build"
#endif

namespace {

std::string readFile(const std::string &Rel) {
  std::string Path = std::string(MONSEM_SOURCE_DIR) + "/" + Rel;
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

struct Sample {
  const char *File;
  const char *Expected;
};

const Sample Samples[] = {
    {"examples/programs/fac.lam", "3628800"},
    {"examples/programs/fib.lam", "2584"},
    {"examples/programs/sort.lam", "[1, 3, 5, 7, 9]"},
    {"examples/programs/collect.lam", "120"},
    {"examples/programs/church.lam", "12"},
    {"examples/programs/ackermann.lam", "9"},
    {"examples/programs/mergesort.lam", "[1, 2, 3, 4, 7, 8, 9]"},
    {"examples/programs/primes.lam",
     "[2, 3, 5, 7, 11, 13, 17, 19, 23, 29]"},
};

} // namespace

class SampleProgramTest : public ::testing::TestWithParam<Sample> {};

TEST_P(SampleProgramTest, AllEvaluatorsAgree) {
  const Sample &S = GetParam();
  auto P = ParsedProgram::parse(readFile(S.File));
  ASSERT_TRUE(P->ok()) << P->diags().str();

  // CEK, strict.
  RunResult Strict = evaluate(P->root());
  ASSERT_TRUE(Strict.Ok) << Strict.Error;
  EXPECT_EQ(Strict.ValueText, S.Expected) << S.File;

  // CEK, lazy strategies. Call-by-name re-evaluates thunks, which is
  // legitimately exponential on some programs (mergesort's repeated list
  // destructuring), so the lazy runs carry fuel and exhaustion skips the
  // comparison rather than failing it.
  for (Strategy St : {Strategy::CallByName, Strategy::CallByNeed}) {
    RunOptions Opts;
    Opts.Strat = St;
    Opts.MaxSteps = 3000000;
    RunResult R = evaluate(P->root(), Opts);
    if (R.FuelExhausted)
      continue;
    ASSERT_TRUE(R.Ok) << S.File << " under " << strategyName(St) << ": "
                      << R.Error;
    EXPECT_EQ(R.ValueText, S.Expected);
  }

  // Bytecode VM.
  Cascade Empty;
  RunResult VM = evaluateCompiled(Empty, P->root());
  ASSERT_TRUE(VM.Ok) << VM.Error;
  EXPECT_EQ(VM.ValueText, S.Expected);

  // Direct CPS reference (may exhaust its C-stack budget on big samples).
  RunResult Direct = runDirect(P->root());
  if (!Direct.FuelExhausted) {
    ASSERT_TRUE(Direct.Ok) << Direct.Error;
    EXPECT_EQ(Direct.ValueText, S.Expected);
  }

  // Partial evaluation: the residual computes the same answer.
  AstContext Out;
  PEResult PR = partialEvaluate(Out, P->root());
  RunResult Res = evaluate(PR.Residual);
  ASSERT_TRUE(Res.Ok) << S.File << ": " << Res.Error;
  EXPECT_EQ(Res.ValueText, S.Expected);
}

TEST_P(SampleProgramTest, MonitoredRunsAgree) {
  const Sample &S = GetParam();
  auto P = ParsedProgram::parse(readFile(S.File));
  ASSERT_TRUE(P->ok());
  CallProfiler Prof;
  Cascade C;
  C.use(Prof);
  RunResult Mon = evaluate(C, P->root());
  ASSERT_TRUE(Mon.Ok) << Mon.Error;
  EXPECT_EQ(Mon.ValueText, S.Expected);
  RunResult VMMon = evaluateCompiled(C, P->root());
  ASSERT_TRUE(VMMon.Ok) << VMMon.Error;
  EXPECT_EQ(Mon.FinalStates[0]->str(), VMMon.FinalStates[0]->str());
}

INSTANTIATE_TEST_SUITE_P(Corpus, SampleProgramTest,
                         ::testing::ValuesIn(Samples),
                         [](const auto &Info) {
                           std::string Name = Info.param.File;
                           size_t Slash = Name.rfind('/');
                           Name = Name.substr(Slash + 1);
                           for (char &C : Name)
                             if (!isalnum(static_cast<unsigned char>(C)))
                               C = '_';
                           return Name;
                         });

TEST(ImpSampleTest, GcdProgram) {
  ImpContext Ctx;
  DiagnosticSink Diags;
  const Cmd *Prog =
      parseImpProgram(Ctx, readFile("examples/programs/gcd.imp"), Diags);
  ASSERT_NE(Prog, nullptr) << Diags.str();
  ImpRunResult R = runImp(Prog);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<std::string>{"21"}));
}

TEST(ImpSampleTest, SumSquaresProgram) {
  ImpContext Ctx;
  DiagnosticSink Diags;
  const Cmd *Prog = parseImpProgram(
      Ctx, readFile("examples/programs/sumsquares.imp"), Diags);
  ASSERT_NE(Prog, nullptr) << Diags.str();
  ImpRunResult R = runImp(Prog);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<std::string>{"385"}));
}
