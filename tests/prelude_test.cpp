//===- tests/prelude_test.cpp - Standard-prelude tests ---------------------===//

#include "compile/VM.h"
#include "interp/Eval.h"
#include "monitors/Profiler.h"
#include "syntax/Annotator.h"
#include "syntax/Prelude.h"

#include <gtest/gtest.h>

using namespace monsem;

namespace {

RunResult runP(std::string_view Src,
               Strategy S = Strategy::Strict) {
  auto P = ParsedProgram::parse(Src);
  EXPECT_TRUE(P->ok()) << P->diags().str();
  DiagnosticSink Diags;
  const Expr *Wrapped = wrapWithPrelude(P->context(), P->root(), Diags);
  EXPECT_NE(Wrapped, nullptr) << Diags.str();
  RunOptions Opts;
  Opts.Strat = S;
  return evaluate(Wrapped, Opts);
}

std::string evalP(std::string_view Src) {
  RunResult R = runP(Src);
  EXPECT_TRUE(R.Ok) << R.Error << " for: " << Src;
  return R.ValueText;
}

} // namespace

TEST(PreludeTest, Basics) {
  EXPECT_EQ(evalP("id 42"), "42");
  EXPECT_EQ(evalP("compose (lambda x. x + 1) (lambda x. x * 2) 5"), "11");
  EXPECT_EQ(evalP("flip (lambda a b. a - b) 3 10"), "7");
}

TEST(PreludeTest, ListBasics) {
  EXPECT_EQ(evalP("length [4, 5, 6]"), "3");
  EXPECT_EQ(evalP("length []"), "0");
  EXPECT_EQ(evalP("append [1, 2] [3]"), "[1, 2, 3]");
  EXPECT_EQ(evalP("reverse [1, 2, 3]"), "[3, 2, 1]");
  EXPECT_EQ(evalP("nth 2 [5, 6, 7]"), "7");
}

TEST(PreludeTest, HigherOrder) {
  EXPECT_EQ(evalP("map (lambda x. x * x) [1, 2, 3]"), "[1, 4, 9]");
  EXPECT_EQ(evalP("filter (lambda x. x % 2 = 0) (range 1 10)"),
            "[2, 4, 6, 8, 10]");
  EXPECT_EQ(evalP("foldl (lambda a b. a - b) 100 [1, 2, 3]"), "94");
  EXPECT_EQ(evalP("foldr (lambda a b. a : b) [] [1, 2]"), "[1, 2]");
  EXPECT_EQ(evalP("zipwith (lambda a b. a * b) [1, 2, 3] [4, 5]"),
            "[4, 10]");
}

TEST(PreludeTest, RangesTakesDrops) {
  EXPECT_EQ(evalP("range 3 6"), "[3, 4, 5, 6]");
  EXPECT_EQ(evalP("range 5 1"), "[]");
  EXPECT_EQ(evalP("take 2 [1, 2, 3]"), "[1, 2]");
  EXPECT_EQ(evalP("take 9 [1]"), "[1]");
  EXPECT_EQ(evalP("drop 2 [1, 2, 3]"), "[3]");
  EXPECT_EQ(evalP("drop 0 [1]"), "[1]");
}

TEST(PreludeTest, Reductions) {
  EXPECT_EQ(evalP("sum (range 1 100)"), "5050");
  EXPECT_EQ(evalP("product [1, 2, 3, 4]"), "24");
  EXPECT_EQ(evalP("elem 3 [1, 2, 3]"), "True");
  EXPECT_EQ(evalP("elem 9 [1, 2, 3]"), "False");
  EXPECT_EQ(evalP("all (lambda x. x > 0) [1, 2]"), "True");
  EXPECT_EQ(evalP("any (lambda x. x < 0) [1, 2]"), "False");
}

TEST(PreludeTest, Quicksort) {
  const char *Qs =
      "letrec qsort = lambda l. "
      "  if l = [] then [] "
      "  else append (qsort (filter (lambda x. x < hd l) (tl l))) "
      "       (hd l : qsort (filter (lambda x. x >= hd l) (tl l))) "
      "in qsort [5, 3, 9, 1, 7, 3]";
  EXPECT_EQ(evalP(Qs), "[1, 3, 3, 5, 7, 9]");
}

TEST(PreludeTest, WorksUnderLazyStrategies) {
  for (Strategy S : {Strategy::CallByName, Strategy::CallByNeed}) {
    RunResult R = runP("sum (map (lambda x. x * 2) (range 1 10))", S);
    ASSERT_TRUE(R.Ok) << strategyName(S) << ": " << R.Error;
    EXPECT_EQ(R.ValueText, "110");
  }
}

TEST(PreludeTest, CompilesToBytecode) {
  auto P = ParsedProgram::parse("sum (range 1 50)");
  ASSERT_TRUE(P->ok());
  DiagnosticSink Diags;
  const Expr *Wrapped = wrapWithPrelude(P->context(), P->root(), Diags);
  ASSERT_NE(Wrapped, nullptr);
  Cascade Empty;
  RunResult R = evaluateCompiled(Empty, Wrapped);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.ValueText, "1275");
}

TEST(PreludeTest, PreludeFunctionsAreMonitorable) {
  // The prelude is object-language code: profile its functions like any
  // user code by annotating the wrapped program.
  auto P = ParsedProgram::parse("sum (map (lambda x. x + 1) (range 1 5))");
  ASSERT_TRUE(P->ok());
  DiagnosticSink Diags;
  const Expr *Wrapped = wrapWithPrelude(P->context(), P->root(), Diags);
  ASSERT_NE(Wrapped, nullptr);
  const Expr *Ann = annotateFunctionBodies(
      P->context(), Wrapped,
      {Symbol::intern("map"), Symbol::intern("foldl"),
       Symbol::intern("range")});
  CallProfiler Prof;
  Cascade C;
  C.use(Prof);
  RunResult R = evaluate(C, Ann);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.IntValue, 20);
  const auto &S = CallProfiler::state(*R.FinalStates[0]);
  EXPECT_EQ(S.count("map"), 1u) << "map's outer lambda body runs once";
  EXPECT_EQ(S.count("range"), 1u);
}

TEST(PreludeTest, UserBindingsShadowPrelude) {
  EXPECT_EQ(evalP("let map = 7 in map"), "7");
}
