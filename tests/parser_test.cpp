//===- tests/parser_test.cpp - Parser unit tests ---------------------------===//

#include "syntax/Parser.h"
#include "syntax/Printer.h"

#include <gtest/gtest.h>

using namespace monsem;

namespace {

struct Parsed {
  AstContext Ctx;
  DiagnosticSink Diags;
  const Expr *E = nullptr;
};

std::unique_ptr<Parsed> parse(std::string_view Src, ParseOptions Opts = {}) {
  auto P = std::make_unique<Parsed>();
  P->E = parseProgram(P->Ctx, Src, P->Diags, Opts);
  return P;
}

std::string reprint(std::string_view Src) {
  auto P = parse(Src);
  EXPECT_NE(P->E, nullptr) << P->Diags.str();
  return P->E ? printExpr(P->E) : "<parse error>";
}

} // namespace

TEST(ParserTest, Atoms) {
  EXPECT_EQ(reprint("42"), "42");
  EXPECT_EQ(reprint("true"), "true");
  EXPECT_EQ(reprint("false"), "false");
  EXPECT_EQ(reprint("[]"), "[]");
  EXPECT_EQ(reprint("x"), "x");
  EXPECT_EQ(reprint("\"hi\\n\""), "\"hi\\n\"");
}

TEST(ParserTest, ApplicationIsLeftAssociative) {
  auto P = parse("f x y");
  const auto *Outer = dyn_cast<AppExpr>(P->E);
  ASSERT_NE(Outer, nullptr);
  const auto *Inner = dyn_cast<AppExpr>(Outer->Fn);
  ASSERT_NE(Inner, nullptr);
  EXPECT_EQ(cast<VarExpr>(Inner->Fn)->Name.str(), "f");
}

TEST(ParserTest, ArithmeticPrecedence) {
  // 1 + 2 * 3 parses as 1 + (2 * 3).
  auto P = parse("1 + 2 * 3");
  const auto *Add = dyn_cast<Prim2Expr>(P->E);
  ASSERT_NE(Add, nullptr);
  EXPECT_EQ(Add->Op, Prim2Op::Add);
  EXPECT_EQ(cast<Prim2Expr>(Add->Rhs)->Op, Prim2Op::Mul);
}

TEST(ParserTest, ApplicationBindsTighterThanArithmetic) {
  // f 1 + 2 parses as (f 1) + 2.
  auto P = parse("f 1 + 2");
  const auto *Add = dyn_cast<Prim2Expr>(P->E);
  ASSERT_NE(Add, nullptr);
  EXPECT_EQ(Add->Lhs->kind(), ExprKind::App);
}

TEST(ParserTest, ConsIsRightAssociative) {
  auto P = parse("1 : 2 : []");
  const auto *C = dyn_cast<Prim2Expr>(P->E);
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(C->Op, Prim2Op::Cons);
  EXPECT_EQ(cast<Prim2Expr>(C->Rhs)->Op, Prim2Op::Cons);
}

TEST(ParserTest, ComparisonIsNonAssociative) {
  auto P = parse("1 < 2 < 3");
  EXPECT_EQ(P->E, nullptr) << "chained comparison should not parse";
  EXPECT_TRUE(P->Diags.hasErrors());
}

TEST(ParserTest, LambdaSugarsToNesting) {
  auto P = parse("lambda x y. x");
  const auto *L1 = dyn_cast<LamExpr>(P->E);
  ASSERT_NE(L1, nullptr);
  const auto *L2 = dyn_cast<LamExpr>(L1->Body);
  ASSERT_NE(L2, nullptr);
  EXPECT_EQ(L2->Param.str(), "y");
}

TEST(ParserTest, LetDesugarsToApplication) {
  auto P = parse("let x = 1 in x + 1");
  const auto *App = dyn_cast<AppExpr>(P->E);
  ASSERT_NE(App, nullptr);
  EXPECT_EQ(App->Fn->kind(), ExprKind::Lam);
}

TEST(ParserTest, AndOrDesugarToConditionals) {
  auto P = parse("true and false");
  ASSERT_EQ(P->E->kind(), ExprKind::If);
  auto Q = parse("true or false");
  ASSERT_EQ(Q->E->kind(), ExprKind::If);
}

TEST(ParserTest, ListLiteralDesugarsToConsChain) {
  auto P = parse("[1, 2]");
  const auto *C = dyn_cast<Prim2Expr>(P->E);
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(C->Op, Prim2Op::Cons);
  const auto *C2 = dyn_cast<Prim2Expr>(C->Rhs);
  ASSERT_NE(C2, nullptr);
  EXPECT_EQ(cast<ConstExpr>(C2->Rhs)->Val.K, ConstVal::Kind::Nil);
}

TEST(ParserTest, LetrecAcceptsNonLambdaBindings) {
  auto P = parse("letrec l1 = {l1}:(1 : []) in l1");
  ASSERT_NE(P->E, nullptr) << P->Diags.str();
  const auto *L = dyn_cast<LetrecExpr>(P->E);
  ASSERT_NE(L, nullptr);
  EXPECT_EQ(L->Bound->kind(), ExprKind::Annot);
}

TEST(ParserTest, AnnotationForms) {
  // Bare label.
  auto P1 = parse("{A}: 1");
  const auto *A1 = dyn_cast<AnnotExpr>(P1->E);
  ASSERT_NE(A1, nullptr);
  EXPECT_EQ(A1->Ann->Head.str(), "A");
  EXPECT_FALSE(A1->Ann->HasParams);
  EXPECT_TRUE(A1->Ann->Qual.empty());

  // Function header.
  auto P2 = parse("{mul(x, y)}: x * y");
  const auto *A2 = dyn_cast<AnnotExpr>(P2->E);
  ASSERT_NE(A2, nullptr);
  EXPECT_TRUE(A2->Ann->HasParams);
  ASSERT_EQ(A2->Ann->Params.size(), 2u);
  EXPECT_EQ(A2->Ann->Params[1].str(), "y");

  // Qualified.
  auto P3 = parse("{trace:fac(x)}: 1");
  const auto *A3 = dyn_cast<AnnotExpr>(P3->E);
  ASSERT_NE(A3, nullptr);
  EXPECT_EQ(A3->Ann->Qual.str(), "trace");
  EXPECT_EQ(A3->Ann->Head.str(), "fac");
}

TEST(ParserTest, AnnotationExtendsMaximallyRight) {
  auto P = parse("{fac}: if x = 0 then 1 else 2");
  const auto *A = dyn_cast<AnnotExpr>(P->E);
  ASSERT_NE(A, nullptr);
  EXPECT_EQ(A->Inner->kind(), ExprKind::If);
}

TEST(ParserTest, PrimResolutionSaturated) {
  auto P = parse("hd [1]");
  EXPECT_EQ(P->E->kind(), ExprKind::Prim1);
  auto Q = parse("min 1 2");
  EXPECT_EQ(Q->E->kind(), ExprKind::Prim2);
}

TEST(ParserTest, PrimResolutionRespectsShadowing) {
  auto P = parse("lambda hd. hd [1]");
  const auto *L = dyn_cast<LamExpr>(P->E);
  ASSERT_NE(L, nullptr);
  EXPECT_EQ(L->Body->kind(), ExprKind::App)
      << "shadowed 'hd' must stay a variable application";
}

TEST(ParserTest, UnsaturatedPrimStaysVariable) {
  auto P = parse("min 1");
  EXPECT_EQ(P->E->kind(), ExprKind::App);
  auto Q = parse("hd");
  EXPECT_EQ(Q->E->kind(), ExprKind::Var);
}

TEST(ParserTest, PrimResolutionCanBeDisabled) {
  ParseOptions Opts;
  Opts.ResolvePrims = false;
  auto P = parse("hd [1]", Opts);
  EXPECT_EQ(P->E->kind(), ExprKind::App);
}

TEST(ParserTest, UnaryMinusFoldsLiterals) {
  auto P = parse("-3");
  const auto *C = dyn_cast<ConstExpr>(P->E);
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(C->Val.Int, -3);
}

TEST(ParserTest, ErrorsAreReported) {
  EXPECT_TRUE(parse("lambda . x")->Diags.hasErrors());
  EXPECT_TRUE(parse("if 1 then 2")->Diags.hasErrors());
  EXPECT_TRUE(parse("(1")->Diags.hasErrors());
  EXPECT_TRUE(parse("letrec = 1 in 2")->Diags.hasErrors());
  EXPECT_TRUE(parse("1 2 )")->Diags.hasErrors());
  EXPECT_TRUE(parse("{}: 1")->Diags.hasErrors());
}

TEST(ParserTest, PaperFactorialParses) {
  auto P = parse("letrec fac = lambda x. if x = 0 then {A}:1 "
                 "else {B}:(x * fac (x - 1)) in fac 5");
  ASSERT_NE(P->E, nullptr) << P->Diags.str();
  const auto *L = dyn_cast<LetrecExpr>(P->E);
  ASSERT_NE(L, nullptr);
  EXPECT_EQ(L->Name.str(), "fac");
}

TEST(ParserTest, StructuralEqualityAndClone) {
  auto P = parse("letrec f = lambda x. {f(x)}: x + 1 in f 3");
  AstContext Other;
  const Expr *Copy = cloneExpr(Other, P->E);
  EXPECT_TRUE(exprEquals(P->E, Copy));
  EXPECT_EQ(printExpr(P->E), printExpr(Copy));
  EXPECT_EQ(exprSize(P->E), exprSize(Copy));
}

TEST(ParserTest, StripAnnotations) {
  auto P = parse("letrec f = lambda x. {f(x)}: x + 1 in f 3");
  AstContext Other;
  const Expr *Stripped = stripAnnotations(Other, P->E);
  std::vector<const Annotation *> Anns;
  collectAnnotations(Stripped, Anns);
  EXPECT_TRUE(Anns.empty());
  auto Q = parse("letrec f = lambda x. x + 1 in f 3");
  EXPECT_TRUE(exprEquals(Stripped, Q->E));
}
