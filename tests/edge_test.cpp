//===- tests/edge_test.cpp - Targeted edge-case tests ----------------------===//
//
// Corner cases of each evaluator that the broad property tests hit only
// probabilistically: letrec in expression position, closures escaping
// letrec scopes, higher-order primitives under laziness, PE fallback
// paths, and output-channel echoing.
//
//===----------------------------------------------------------------------===//

#include "compile/VM.h"
#include "interp/Direct.h"
#include "interp/Eval.h"
#include "monitors/Profiler.h"
#include "pe/PartialEval.h"
#include "support/OutChan.h"
#include "syntax/Printer.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace monsem;

namespace {

std::unique_ptr<ParsedProgram> parseOk(std::string_view Src) {
  auto P = ParsedProgram::parse(Src);
  EXPECT_TRUE(P->ok()) << P->diags().str();
  return P;
}

/// Runs Src on CEK (all strategies), VM, and Direct; all must produce
/// \p Expected.
void everywhere(std::string_view Src, std::string_view Expected) {
  auto P = parseOk(Src);
  RunResult Strict = evaluate(P->root());
  ASSERT_TRUE(Strict.Ok) << Src << ": " << Strict.Error;
  EXPECT_EQ(Strict.ValueText, Expected) << Src;
  for (Strategy S : {Strategy::CallByName, Strategy::CallByNeed}) {
    RunOptions Opts;
    Opts.Strat = S;
    RunResult R = evaluate(P->root(), Opts);
    ASSERT_TRUE(R.Ok) << Src << " (" << strategyName(S) << "): " << R.Error;
    EXPECT_EQ(R.ValueText, Expected) << Src;
  }
  Cascade Empty;
  RunResult VM = evaluateCompiled(Empty, P->root());
  ASSERT_TRUE(VM.Ok) << Src << " (VM): " << VM.Error;
  EXPECT_EQ(VM.ValueText, Expected) << Src;
  RunResult Dir = runDirect(P->root());
  if (!Dir.FuelExhausted) {
    ASSERT_TRUE(Dir.Ok) << Src << " (direct): " << Dir.Error;
    EXPECT_EQ(Dir.ValueText, Expected) << Src;
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// letrec placement
//===----------------------------------------------------------------------===//

TEST(EdgeTest, LetrecInExpressionPosition) {
  everywhere("1 + (letrec x = 2 in x) + 3", "6");
  everywhere("(letrec f = lambda x. x * 2 in f) 21", "42");
  everywhere("hd (letrec l = [7, 8] in l)", "7");
}

TEST(EdgeTest, LetrecUnderLambda) {
  everywhere("(lambda n. letrec f = lambda x. if x = 0 then 0 else "
             "n + f (x - 1) in f 3) 5",
             "15");
}

TEST(EdgeTest, ClosureEscapingLetrecScope) {
  // The closure returned from the letrec body still sees f.
  everywhere("(letrec f = lambda x. if x = 0 then 0 else 1 + f (x - 1) "
             "in lambda y. f y) 4",
             "4");
}

TEST(EdgeTest, ShadowingCapturesLexically) {
  // The lambda-bound f shadows the letrec f in the body, while the passed
  // function captured the letrec f at its definition site.
  everywhere("letrec f = lambda x. x + 1 in "
             "(lambda f. f 10) (lambda x. f x * 2)",
             "22");
}

TEST(EdgeTest, LetrecValueUsingEarlierLetrec) {
  everywhere("letrec f = lambda x. x * x in letrec v = f 5 in v + 1", "26");
}

//===----------------------------------------------------------------------===//
// Higher-order primitives and partial application
//===----------------------------------------------------------------------===//

TEST(EdgeTest, PartialPrimitivesEverywhere) {
  everywhere("let m3 = min 3 in m3 1 + m3 7", "4");
  everywhere("letrec map = lambda f l. if l = [] then [] else "
             "f (hd l) : map f (tl l) in map (min 4) [2, 6]",
             "[2, 4]");
}

TEST(EdgeTest, PrimitiveAsResult) {
  everywhere("(if true then hd else tl) [9, 1]", "9");
}

TEST(EdgeTest, CurriedApplicationChains) {
  everywhere("(lambda a b c d. a - b + c - d) 10 1 2 3", "8");
}

//===----------------------------------------------------------------------===//
// Booleans, strings, comparisons
//===----------------------------------------------------------------------===//

TEST(EdgeTest, StringValues) {
  everywhere("\"abc\"", "abc");
  everywhere("if \"a\" < \"b\" then 1 else 2", "1");
  everywhere("\"x\" = \"x\"", "True");
  everywhere("[\"a\", \"b\"]", "[a, b]");
}

TEST(EdgeTest, MixedTypeEquality) {
  everywhere("1 = true", "False");
  everywhere("[] = 0", "False");
  everywhere("[1, [2, 3]] = [1, [2, 3]]", "True");
}

//===----------------------------------------------------------------------===//
// Annotations in unusual positions
//===----------------------------------------------------------------------===//

TEST(EdgeTest, AnnotationOnConditionAndBranches) {
  auto P = parseOk("letrec f = lambda n. if {c}: (n = 0) then {t}: 1 "
                   "else {e}: f (n - 1) in f 2");
  CallProfiler Prof;
  Cascade C;
  C.use(Prof);
  RunResult R = evaluate(C, P->root());
  ASSERT_TRUE(R.Ok) << R.Error;
  const auto &S = CallProfiler::state(*R.FinalStates[0]);
  EXPECT_EQ(S.count("c"), 3u);
  EXPECT_EQ(S.count("t"), 1u);
  EXPECT_EQ(S.count("e"), 2u);
}

TEST(EdgeTest, AnnotationOnLambdaItself) {
  // The annotation fires when the lambda *expression* is evaluated (once,
  // yielding a closure), not when the function is applied.
  auto P = parseOk("let f = ({mk}: lambda x. x + 1) in f 1 + f 2");
  CallProfiler Prof;
  Cascade C;
  C.use(Prof);
  RunResult R = evaluate(C, P->root());
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(CallProfiler::state(*R.FinalStates[0]).count("mk"), 1u);
  EXPECT_EQ(R.IntValue, 5);
}

//===----------------------------------------------------------------------===//
// PE fallback paths
//===----------------------------------------------------------------------===//

TEST(PEEdgeTest, EscapedRecursiveClosureStaysCorrect) {
  // f escapes its letrec and is applied outside; whether or not the
  // specializer manages to fold it, the answer must be preserved.
  const char *Src = "(letrec f = lambda x. if x = 0 then 0 else "
                    "1 + f (x - 1) in lambda y. f y) 6";
  auto P = parseOk(Src);
  AstContext Out;
  PEResult R = partialEvaluate(Out, P->root());
  RunResult Orig = evaluate(P->root());
  RunResult Res = evaluate(R.Residual);
  ASSERT_TRUE(Res.Ok) << Res.Error << "\n" << printExpr(R.Residual);
  EXPECT_EQ(Orig.ValueText, Res.ValueText);
}

TEST(PEEdgeTest, SpecializeApplyWithStaticListArgument) {
  const char *Sum = "letrec sum = lambda l. if l = [] then 0 else "
                    "hd l + sum (tl l) in lambda extra l. extra + sum l";
  auto P = parseOk(Sum);
  AstContext Out, ArgCtx;
  DiagnosticSink D;
  const Expr *List = parseProgram(ArgCtx, "[1, 2]", D);
  ASSERT_NE(List, nullptr);
  // `extra` is static (100), the list stays dynamic.
  PEResult R = specializeApply(Out, P->root(), {ArgCtx.mkInt(100)}, 1);
  ASSERT_FALSE(R.GaveUp);
  AstContext AppCtx;
  const Expr *App =
      AppCtx.mkApp(cloneExpr(AppCtx, R.Residual), cloneExpr(AppCtx, List));
  EXPECT_EQ(evaluate(App).IntValue, 103);
}

TEST(PEEdgeTest, ResidualOfDynamicConditionKeepsBothBranches) {
  auto P = parseOk("lambda b. if b then 1 + 1 else 2 + 2");
  AstContext Out;
  PEResult R = partialEvaluate(Out, P->root());
  ASSERT_FALSE(R.GaveUp);
  std::string Text = printExpr(R.Residual);
  EXPECT_NE(Text.find("2"), std::string::npos);
  EXPECT_NE(Text.find("4"), std::string::npos) << Text;
  AstContext AppCtx;
  const Expr *App =
      AppCtx.mkApp(cloneExpr(AppCtx, R.Residual), AppCtx.mkBool(false));
  EXPECT_EQ(evaluate(App).IntValue, 4);
}

TEST(PEEdgeTest, SelfReferencingValueLetrecResidualizes) {
  // letrec v = <mentions v> cannot be folded; the residual still errors
  // the same way at run time.
  auto P = parseOk("letrec v = v + 1 in v");
  AstContext Out;
  PEResult R = partialEvaluate(Out, P->root());
  RunResult Orig = evaluate(P->root());
  RunResult Res = evaluate(R.Residual);
  EXPECT_FALSE(Res.Ok);
  EXPECT_EQ(Orig.Error.find("before initialization") != std::string::npos,
            Res.Error.find("before initialization") != std::string::npos);
}

//===----------------------------------------------------------------------===//
// OutChan echo
//===----------------------------------------------------------------------===//

TEST(EdgeTest, OutChanEchoesLive) {
  std::ostringstream OS;
  OutChan C;
  C.echoTo(&OS);
  C.addLine("one");
  C.addText("tw");
  C.endLine();
  EXPECT_EQ(OS.str(), "one\ntw\n");
  EXPECT_EQ(C.str(), "one\ntw\n");
}
