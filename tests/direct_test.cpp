//===- tests/direct_test.cpp - Definitional interpreter tests --------------===//
//
// Validates the literal transliteration of the paper's derivation: the
// standard functional (Fig. 2), the monitoring derivation Gbar (Fig. 3),
// double derivation (Fig. 5), and agreement with the CEK machine.
//
//===----------------------------------------------------------------------===//

#include "interp/Direct.h"
#include "interp/Eval.h"
#include "monitors/Profiler.h"
#include "monitors/Tracer.h"

#include "RandomProgram.h"

#include <gtest/gtest.h>

using namespace monsem;

namespace {

std::unique_ptr<ParsedProgram> parseOk(std::string_view Src) {
  auto P = ParsedProgram::parse(Src);
  EXPECT_TRUE(P->ok()) << P->diags().str();
  return P;
}

} // namespace

TEST(DirectTest, BasicValues) {
  auto P = parseOk("letrec fac = lambda x. if x = 0 then 1 else "
                   "x * fac (x - 1) in fac 5");
  RunResult R = runDirect(P->root());
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.IntValue, 120);
}

TEST(DirectTest, ErrorsMatchMachine) {
  for (const char *Src : {"x", "1 / 0", "hd []", "1 2", "if 1 then 2 else 3",
                          "letrec x = x + 1 in x"}) {
    auto P = parseOk(Src);
    RunResult Direct = runDirect(P->root());
    RunResult Machine = evaluate(P->root());
    EXPECT_FALSE(Direct.Ok) << Src;
    EXPECT_EQ(Direct.Error, Machine.Error) << Src;
  }
}

TEST(DirectTest, CallBudgetBoundsRunawayPrograms) {
  auto P = parseOk("letrec loop = lambda x. loop x in loop 1");
  RunResult R = runDirect(P->root(), nullptr, /*CallBudget=*/2000);
  EXPECT_TRUE(R.FuelExhausted);
}

TEST(DirectTest, MonitoringDerivationProfilesFactorial) {
  auto P = parseOk(
      "letrec mul = lambda x. lambda y. {mul}:(x*y) in "
      "letrec fac = lambda x. {fac}: if (x=0) then 1 else "
      "mul x (fac (x-1)) in fac 3");
  CallProfiler Prof;
  Cascade C;
  C.use(Prof);
  RunResult R = runDirect(P->root(), &C);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.IntValue, 6);
  ASSERT_EQ(R.FinalStates.size(), 1u);
  EXPECT_EQ(R.FinalStates[0]->str(), "[fac -> 4, mul -> 3]");
}

TEST(DirectTest, DoubleDerivationIsCascading) {
  // Fig. 5: derive monitoring semantics, treat it as a standard semantics,
  // and derive again. The tracer (params) and profiler (bare) have
  // disjoint annotation syntaxes.
  auto P = parseOk(
      "letrec mul = lambda x. lambda y. {mul(x, y)}: {mul}:(x*y) in "
      "letrec fac = lambda x. {fac(x)}: {fac}: if (x=0) then 1 else "
      "mul x (fac (x-1)) in fac 3");
  CallProfiler Prof;
  Tracer Trc;
  Cascade C;
  C.use(Prof).use(Trc);
  RunResult R = runDirect(P->root(), &C);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.IntValue, 6);
  ASSERT_EQ(R.FinalStates.size(), 2u);
  EXPECT_EQ(R.FinalStates[0]->str(), "[fac -> 4, mul -> 3]");
  EXPECT_EQ(Tracer::state(*R.FinalStates[1]).Chan.numLines(), 14u);

  // And the CEK machine computes the identical cascade result.
  RunResult M = evaluate(C, P->root());
  ASSERT_TRUE(M.Ok) << M.Error;
  EXPECT_EQ(M.ValueText, R.ValueText);
  EXPECT_EQ(M.FinalStates[0]->str(), R.FinalStates[0]->str());
  EXPECT_EQ(M.FinalStates[1]->str(), R.FinalStates[1]->str());
}

TEST(DirectTest, FixpointSharesDerivedBehaviorAtAllLevels) {
  // The annotation sits inside a recursive function: the derived behavior
  // must be exhibited at every level of recursion (the point of using
  // functionals).
  auto P = parseOk("letrec down = lambda n. {down}: if n = 0 then 0 else "
                   "down (n - 1) in down 7");
  CallProfiler Prof;
  Cascade C;
  C.use(Prof);
  RunResult R = runDirect(P->root(), &C);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(CallProfiler::state(*R.FinalStates[0]).count("down"), 8u);
}

// Differential: direct CPS vs CEK machine over generated programs.
class DirectDifferentialTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(DirectDifferentialTest, AgreesWithMachine) {
  AstContext Ctx;
  const Expr *Prog = monsem::testing::genProgram(Ctx, GetParam());
  RunResult Direct = runDirect(Prog, nullptr, /*CallBudget=*/12000);
  if (Direct.FuelExhausted)
    GTEST_SKIP() << "program too large for the CPS reference interpreter";
  RunOptions Opts;
  Opts.MaxSteps = 1000000;
  RunResult Machine = evaluate(Prog, Opts);
  EXPECT_TRUE(Direct.sameOutcome(Machine))
      << "direct: " << (Direct.Ok ? Direct.ValueText : Direct.Error)
      << "\nmachine: " << (Machine.Ok ? Machine.ValueText : Machine.Error);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DirectDifferentialTest,
                         ::testing::Range(0u, 60u));
