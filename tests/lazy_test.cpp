//===- tests/lazy_test.cpp - Lazy strategies (Section 9.2 modules) ---------===//

#include "interp/Eval.h"

#include <gtest/gtest.h>

using namespace monsem;

namespace {

RunResult runWith(std::string_view Src, Strategy S,
                  uint64_t MaxSteps = 2000000) {
  auto P = ParsedProgram::parse(Src);
  EXPECT_TRUE(P->ok()) << P->diags().str();
  RunOptions Opts;
  Opts.Strat = S;
  Opts.MaxSteps = MaxSteps;
  return evaluate(P->root(), Opts);
}

} // namespace

TEST(LazyTest, ValuesAgreeAcrossStrategiesOnPurePrograms) {
  const char *Programs[] = {
      "letrec fac = lambda x. if x = 0 then 1 else x * fac (x - 1) in fac 6",
      "letrec sum = lambda l. if l = [] then 0 else hd l + sum (tl l) "
      "in sum [1, 2, 3]",
      "(lambda x y. x + y) 1 2",
      "let f = lambda g. g 3 in f (lambda x. x * x)",
      "if 1 < 2 then 10 else 20",
  };
  for (const char *Src : Programs) {
    RunResult Strict = runWith(Src, Strategy::Strict);
    RunResult ByName = runWith(Src, Strategy::CallByName);
    RunResult ByNeed = runWith(Src, Strategy::CallByNeed);
    ASSERT_TRUE(Strict.Ok) << Src << ": " << Strict.Error;
    EXPECT_EQ(Strict.ValueText, ByName.ValueText) << Src;
    EXPECT_EQ(Strict.ValueText, ByNeed.ValueText) << Src;
  }
}

TEST(LazyTest, UnusedErroringArgumentIsSkipped) {
  const char *Src = "(lambda x. 42) (hd [])";
  EXPECT_FALSE(runWith(Src, Strategy::Strict).Ok);
  RunResult N = runWith(Src, Strategy::CallByName);
  EXPECT_TRUE(N.Ok) << N.Error;
  EXPECT_EQ(N.IntValue, 42);
  RunResult D = runWith(Src, Strategy::CallByNeed);
  EXPECT_TRUE(D.Ok) << D.Error;
  EXPECT_EQ(D.IntValue, 42);
}

TEST(LazyTest, UnusedDivergingArgumentIsSkipped) {
  const char *Src =
      "letrec loop = lambda x. loop x in (lambda y. 7) (loop 1)";
  RunResult S = runWith(Src, Strategy::Strict, 50000);
  EXPECT_TRUE(S.FuelExhausted);
  RunResult N = runWith(Src, Strategy::CallByName, 50000);
  EXPECT_EQ(N.IntValue, 7);
}

TEST(LazyTest, CallByNeedMemoizes) {
  // x is used three times; call-by-name re-evaluates the (expensive)
  // argument every time, call-by-need only once.
  const char *Src =
      "letrec slow = lambda n. if n = 0 then 1 else slow (n - 1) in "
      "(lambda x. x + x + x) (slow 200)";
  RunResult ByName = runWith(Src, Strategy::CallByName);
  RunResult ByNeed = runWith(Src, Strategy::CallByNeed);
  ASSERT_TRUE(ByName.Ok) << ByName.Error;
  ASSERT_TRUE(ByNeed.Ok) << ByNeed.Error;
  EXPECT_EQ(ByName.IntValue, 3);
  EXPECT_EQ(ByNeed.IntValue, 3);
  EXPECT_LT(ByNeed.Steps * 2, ByName.Steps)
      << "memoization should save at least half the work here";
}

TEST(LazyTest, BlackHoleDetectedUnderCallByNeed) {
  RunResult R = runWith("letrec x = x + 1 in x", Strategy::CallByNeed);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("black hole"), std::string::npos) << R.Error;
}

TEST(LazyTest, SelfReferenceDivergesUnderCallByName) {
  RunResult R = runWith("letrec x = x + 1 in x", Strategy::CallByName, 20000);
  EXPECT_TRUE(R.FuelExhausted);
}

TEST(LazyTest, StrictSelfReferenceIsAnError) {
  RunResult R = runWith("letrec x = x + 1 in x", Strategy::Strict);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("before initialization"), std::string::npos);
}

TEST(LazyTest, PrimitivesForceThunkArguments) {
  // Higher-order prim application under laziness: `hd` receives a thunk.
  const char *Src = "let f = hd in f [5]";
  EXPECT_EQ(runWith(Src, Strategy::CallByName).IntValue, 5);
  EXPECT_EQ(runWith(Src, Strategy::CallByNeed).IntValue, 5);
  const char *Src2 = "let m = min in m (2 + 3) (1 + 1)";
  EXPECT_EQ(runWith(Src2, Strategy::CallByName).IntValue, 2);
  EXPECT_EQ(runWith(Src2, Strategy::CallByNeed).IntValue, 2);
}

TEST(LazyTest, MonitoringWorksUnderLazyStrategies) {
  // Annotations fire when the annotated expression is evaluated — under
  // laziness, when the thunk is forced.
  auto P = ParsedProgram::parse(
      "letrec fac = lambda x. {fac}: if x = 0 then 1 else x * fac (x - 1) "
      "in fac 3");
  ASSERT_TRUE(P->ok());
  // Use the Session-style API via Eval.h in cascade tests; here just check
  // obliviousness under lazy evaluation.
  RunOptions Opts;
  Opts.Strat = Strategy::CallByNeed;
  RunResult R = evaluate(P->root(), Opts);
  EXPECT_EQ(R.IntValue, 6);
}

TEST(LazyTest, StrategyNames) {
  EXPECT_STREQ(strategyName(Strategy::Strict), "strict");
  EXPECT_STREQ(strategyName(Strategy::CallByName), "call-by-name");
  EXPECT_STREQ(strategyName(Strategy::CallByNeed), "call-by-need");
}

TEST(LazyTest, CallByNeedTamesExponentialCallByName) {
  // Mergesort-style repeated destructuring: call-by-name re-evaluates the
  // recursive split chains and blows up exponentially; call-by-need's
  // memoization keeps it polynomial. (This is why the sample-program
  // corpus runs lazy strategies with fuel.)
  const char *Src =
      "letrec merge = lambda a b. "
      "  if a = [] then b else if b = [] then a "
      "  else if hd a <= hd b then hd a : merge (tl a) b "
      "  else hd b : merge a (tl b) in "
      "letrec split = lambda l. "
      "  if l = [] then [[], []] "
      "  else if tl l = [] then [l, []] "
      "  else letrec rest = split (tl (tl l)) in "
      "       (hd l : hd rest) : (hd (tl l) : hd (tl rest)) : [] in "
      "letrec msort = lambda l. "
      "  if l = [] then [] else if tl l = [] then l "
      "  else letrec halves = split l in "
      "       merge (msort (hd halves)) (msort (hd (tl halves))) "
      "in msort [9, 2, 7, 4, 1, 8, 3]";
  auto P = ParsedProgram::parse(Src);
  ASSERT_TRUE(P->ok());

  RunResult Need = runWith(Src, Strategy::CallByNeed, 500000);
  ASSERT_TRUE(Need.Ok) << Need.Error;
  EXPECT_EQ(Need.ValueText, "[1, 2, 3, 4, 7, 8, 9]");

  RunResult Name = runWith(Src, Strategy::CallByName, 500000);
  EXPECT_TRUE(Name.FuelExhausted)
      << "call-by-name should exceed the budget call-by-need met easily";
  EXPECT_GT(Name.Steps, 10 * Need.Steps);
}
