//===- tests/cli_test.cpp - CLI integration tests --------------------------===//
//
// Drives the `monsem` command-line tool end-to-end over the sample
// programs (popen; no extra test infrastructure).
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#ifndef MONSEM_CLI_PATH
#error "MONSEM_CLI_PATH must be defined by the build"
#endif
#ifndef MONSEM_SOURCE_DIR
#error "MONSEM_SOURCE_DIR must be defined by the build"
#endif

namespace {

struct CliResult {
  int ExitCode;
  std::string Output; // stdout + stderr.
};

CliResult runShell(const std::string &Cmd);

CliResult runCli(const std::string &Args) {
  return runShell(std::string(MONSEM_CLI_PATH) + " " + Args);
}

CliResult runShell(const std::string &RawCmd) {
  std::string Cmd = RawCmd + " 2>&1";
  FILE *Pipe = popen(Cmd.c_str(), "r");
  EXPECT_NE(Pipe, nullptr);
  std::string Out;
  char Buf[512];
  while (size_t N = fread(Buf, 1, sizeof(Buf), Pipe))
    Out.append(Buf, N);
  int Status = pclose(Pipe);
  return CliResult{WEXITSTATUS(Status), Out};
}

std::string sample(const char *Name) {
  return std::string(MONSEM_SOURCE_DIR) + "/examples/programs/" + Name;
}

} // namespace

TEST(CliTest, PlainRun) {
  CliResult R = runCli(sample("fac.lam"));
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("3628800"), std::string::npos) << R.Output;
}

TEST(CliTest, ProfileAndCost) {
  CliResult R = runCli(sample("fib.lam") + " --profile --cost");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("profile: [fib -> 8361]"), std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("cost: [fib: calls=8361"), std::string::npos)
      << R.Output;
}

TEST(CliTest, TraceEmitsPaperFormat) {
  CliResult R = runCli(sample("fac.lam") + " --trace");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("[FAC receives (10)]"), std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("[FAC returns 3628800]"), std::string::npos);
}

TEST(CliTest, DemonFlagsSortSample) {
  CliResult R = runCli(sample("sort.lam") + " --demon-sorted");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("demon: {input}"), std::string::npos) << R.Output;
}

TEST(CliTest, CollectingMonitor) {
  CliResult R = runCli(sample("collect.lam") + " --collect");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("test -> {False, True}"), std::string::npos)
      << R.Output;
}

TEST(CliTest, VmAndInterpreterAgree) {
  CliResult Interp = runCli(sample("church.lam"));
  CliResult VM = runCli(sample("church.lam") + " --backend=vm");
  EXPECT_EQ(Interp.ExitCode, 0);
  EXPECT_EQ(VM.ExitCode, 0);
  EXPECT_EQ(Interp.Output, VM.Output);
}

TEST(CliTest, RegisterBackendAgreesWithInterpreter) {
  CliResult Interp = runCli(sample("church.lam"));
  CliResult Reg = runCli(sample("church.lam") + " --backend=vm-reg");
  EXPECT_EQ(Interp.ExitCode, 0);
  EXPECT_EQ(Reg.ExitCode, 0) << Reg.Output;
  EXPECT_EQ(Interp.Output, Reg.Output);
}

TEST(CliTest, RegisterBackendRunsMonitors) {
  // Probe events must be identical across bytecode tiers, so the profile
  // line is byte-for-byte what --vm (and the CEK machine) prints.
  CliResult VM = runCli(sample("fac.lam") + " --backend=vm --profile");
  CliResult Reg = runCli(sample("fac.lam") + " --backend=vm-reg --profile");
  EXPECT_EQ(VM.ExitCode, 0) << VM.Output;
  EXPECT_EQ(Reg.ExitCode, 0) << Reg.Output;
  EXPECT_EQ(VM.Output, Reg.Output);
}

TEST(CliTest, RegisterDisasmShowsRegisterListing) {
  CliResult R = runCli(sample("fac.lam") + " --backend=vm-reg --disasm");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("regs="), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("rconst"), std::string::npos) << R.Output;
}

TEST(CliTest, AotBackendAgreesWithInterpreter) {
  // Works with or without a system C compiler: vm-aot degrades to the
  // register interpreter when compilation is unavailable, so the value
  // and exit code are compiler-independent.
  CliResult Interp = runCli(sample("church.lam"));
  CliResult Aot = runCli(sample("church.lam") + " --backend=vm-aot");
  EXPECT_EQ(Interp.ExitCode, 0);
  EXPECT_EQ(Aot.ExitCode, 0) << Aot.Output;
  EXPECT_EQ(Interp.Output, Aot.Output);
}

TEST(CliTest, AotBackendRunsMonitors) {
  // The native tier deopts around every probe window, so monitored output
  // is byte-for-byte the register tier's.
  CliResult Reg = runCli(sample("fac.lam") + " --backend=vm-reg --profile");
  CliResult Aot = runCli(sample("fac.lam") + " --backend=vm-aot --profile");
  EXPECT_EQ(Reg.ExitCode, 0) << Reg.Output;
  EXPECT_EQ(Aot.ExitCode, 0) << Aot.Output;
  EXPECT_EQ(Reg.Output, Aot.Output);
}

TEST(CliTest, AotDisasmShowsEmittedC) {
  // --disasm under vm-aot appends the generated C translation unit to the
  // register listing; both are printable without a compiler present.
  CliResult R = runCli(sample("fac.lam") + " --backend=vm-aot --disasm");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("regs="), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("MonsemAotCtx"), std::string::npos) << R.Output;
}

TEST(CliTest, UnknownBackendIsUsageError) {
  CliResult R = runCli(sample("fac.lam") + " --backend=jit");
  EXPECT_EQ(R.ExitCode, 2);
  EXPECT_NE(R.Output.find("unknown backend"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("vm-reg"), std::string::npos)
      << "the error must name the valid choices: " << R.Output;
  EXPECT_NE(R.Output.find("vm-aot"), std::string::npos)
      << "the error must name the valid choices: " << R.Output;
  // The note reports this build's actual tier availability.
  EXPECT_NE(R.Output.find("note: "), std::string::npos) << R.Output;
}

TEST(CliTest, HelpListsBackendAvailability) {
  CliResult R = runShell(std::string(MONSEM_CLI_PATH) + " --help");
  EXPECT_NE(R.Output.find("vm-aot"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("this build: "), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("--aot-cache"), std::string::npos) << R.Output;
}

TEST(CliTest, PartialEvaluationRun) {
  CliResult R = runCli(sample("fac.lam") + " --pe --print-residual");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("residual: 3628800"), std::string::npos)
      << R.Output;
}

TEST(CliTest, LazyStrategy) {
  CliResult R = runCli(sample("church.lam") + " --strategy=need");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("12"), std::string::npos);
}

TEST(CliTest, ImperativeWatch) {
  CliResult R = runCli(sample("gcd.imp") + " --imp --imp-watch=a");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("step: a 252 -> 147"), std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("store: a = 21; b = 21;"), std::string::npos);
}

TEST(CliTest, MaxStepsFuel) {
  CliResult R = runShell(
      std::string("printf 'letrec loop = lambda x. loop x in loop 1' | ") +
      MONSEM_CLI_PATH + " - --max-steps=100");
  EXPECT_NE(R.ExitCode, 0);
  EXPECT_NE(R.Output.find("fuel-exhausted"), std::string::npos) << R.Output;
}

TEST(CliTest, VmHonorsGovernorFlags) {
  // Flags and backend selection funnel through the same EvalMode, so the
  // fuel limit must bite on the VM exactly as it does on the CEK machine.
  CliResult R = runShell(
      std::string("printf 'letrec loop = lambda x. loop x in loop 1' | ") +
      MONSEM_CLI_PATH + " - --vm --max-steps=100");
  EXPECT_NE(R.ExitCode, 0);
  EXPECT_NE(R.Output.find("fuel-exhausted"), std::string::npos) << R.Output;
}

TEST(CliTest, VmFlagWarnsDeprecated) {
  // --vm still works but steers users to the --backend spelling; the
  // warning goes to stderr and must not change the exit code or value.
  CliResult Old = runCli(sample("church.lam") + " --vm");
  EXPECT_EQ(Old.ExitCode, 0) << Old.Output;
  EXPECT_NE(Old.Output.find("warning: --vm is deprecated; use --backend=vm"),
            std::string::npos)
      << Old.Output;
  CliResult New = runCli(sample("church.lam") + " --backend=vm");
  EXPECT_EQ(New.Output.find("deprecated"), std::string::npos) << New.Output;
}

TEST(CliTest, ParseErrorsExitNonzero) {
  CliResult R = runShell(std::string("printf 'lambda . oops' | ") +
                         MONSEM_CLI_PATH + " -");
  EXPECT_NE(R.ExitCode, 0);
  EXPECT_NE(R.Output.find("error"), std::string::npos);
}

TEST(CliTest, StdinImperative) {
  CliResult R = runShell(std::string("printf 'print 1+2' | ") +
                         MONSEM_CLI_PATH + " - --imp");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("3"), std::string::npos);
}

TEST(CliTest, UsageOnBadFlag) {
  CliResult R = runCli(sample("fac.lam") + " --no-such-flag");
  EXPECT_EQ(R.ExitCode, 2);
  EXPECT_NE(R.Output.find("usage:"), std::string::npos);
}

TEST(CliTest, CoverageReport) {
  CliResult R = runCli(sample("ackermann.lam") + " --coverage");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("cover: 8/8 points hit"), std::string::npos)
      << R.Output;
}

TEST(CliTest, ReplSession) {
  CliResult R = runShell(
      std::string("printf ':let sq = lambda x. x * x\\n:monitor profile\\n"
                  "sq 7\\n:quit\\n' | ") +
      MONSEM_CLI_PATH + " --repl");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("49"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("profile: [sq -> 1]"), std::string::npos)
      << R.Output;
}

TEST(CliTest, ReplRejectsBadDefinitions) {
  CliResult R = runShell(std::string("printf ':let broken = lambda .\\n"
                                     "1 + 1\\n:quit\\n' | ") +
                         MONSEM_CLI_PATH + " --repl");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("error"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("2"), std::string::npos)
      << "later evaluations must still work";
}

TEST(CliTest, PreludeQuicksort) {
  CliResult R = runCli(sample("quicksort.lam") + " --prelude");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("[1, 2, 3, 3, 5, 7, 8, 9]"), std::string::npos)
      << R.Output;
}

TEST(CliTest, ImperativeReadInput) {
  CliResult R =
      runCli(sample("average.imp") + " --imp --input=3,10,20,12");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("14"), std::string::npos) << R.Output;
}

//===----------------------------------------------------------------------===//
// Exit-code contract: one code per Outcome (see exitCodeFor in the CLI).
//===----------------------------------------------------------------------===//

namespace {

CliResult runStdin(const std::string &Program, const std::string &Args) {
  return runShell("printf '" + Program + "' | " + MONSEM_CLI_PATH + " - " +
                  Args);
}

const char *kDivergingProgram = "letrec loop = lambda x. loop x in loop 1";
const char *kDeepProgram =
    "letrec f = lambda n. 1 + f (n + 1) in f 0"; // Non-tail: depth grows.

} // namespace

TEST(CliExitCodes, OkIsZero) {
  EXPECT_EQ(runStdin("40 + 2", "").ExitCode, 0);
}

TEST(CliExitCodes, RuntimeErrorIsTwo) {
  CliResult R = runStdin("1 2", ""); // Applying a non-function.
  EXPECT_EQ(R.ExitCode, 2) << R.Output;
}

TEST(CliExitCodes, FuelExhaustedIsThree) {
  CliResult R = runStdin(kDivergingProgram, "--max-steps=100");
  EXPECT_EQ(R.ExitCode, 3) << R.Output;
  EXPECT_NE(R.Output.find("fuel-exhausted"), std::string::npos) << R.Output;
}

TEST(CliExitCodes, DeadlineIsFour) {
  CliResult R = runStdin(kDivergingProgram, "--deadline-ms=20");
  EXPECT_EQ(R.ExitCode, 4) << R.Output;
}

TEST(CliExitCodes, MemoryExceededIsFive) {
  CliResult R = runStdin(kDeepProgram, "--max-bytes=20000");
  EXPECT_EQ(R.ExitCode, 5) << R.Output;
}

TEST(CliExitCodes, DepthExceededIsSeven) {
  CliResult R = runStdin(kDeepProgram, "--max-depth=10");
  EXPECT_EQ(R.ExitCode, 7) << R.Output;
}

TEST(CliExitCodes, UnreadableInputIsOne) {
  CliResult R = runCli("/nonexistent/program.lam");
  EXPECT_EQ(R.ExitCode, 1) << R.Output;
}

//===----------------------------------------------------------------------===//
// Checkpoint / resume and the run journal.
//===----------------------------------------------------------------------===//

TEST(CliCheckpoint, InterruptAndResumeMatchesUninterrupted) {
  std::string Ck = ::testing::TempDir() + "cli_fac.ck";
  std::remove(Ck.c_str());
  CliResult Stop = runCli(sample("fac.lam") +
                          " --profile --max-steps=200 --checkpoint-out=" + Ck);
  EXPECT_EQ(Stop.ExitCode, 3) << Stop.Output;
  EXPECT_NE(Stop.Output.find("checkpoint written to"), std::string::npos)
      << Stop.Output;

  CliResult Resumed =
      runCli(sample("fac.lam") + " --profile --resume=" + Ck);
  EXPECT_EQ(Resumed.ExitCode, 0) << Resumed.Output;

  CliResult Straight = runCli(sample("fac.lam") + " --profile");
  // The answer and the monitor's final state must be exactly what the
  // uninterrupted run produces.
  EXPECT_EQ(Resumed.Output, Straight.Output);
  std::remove(Ck.c_str());
}

TEST(CliCheckpoint, VmCheckpointResumesOnEitherBytecodeTier) {
  // A VM checkpoint spills register windows to the canonical stack form,
  // so a run interrupted on the register tier resumes on the stack VM by
  // default — and stays on the register tier when asked to.
  std::string Ck = ::testing::TempDir() + "cli_reg.ck";
  std::remove(Ck.c_str());
  CliResult Stop =
      runCli(sample("fac.lam") + " --backend=vm-reg --profile" +
             " --max-steps=50 --checkpoint-out=" + Ck);
  EXPECT_EQ(Stop.ExitCode, 3) << Stop.Output;

  CliResult Straight = runCli(sample("fac.lam") + " --profile --backend=vm");
  CliResult OnStack =
      runCli(sample("fac.lam") + " --profile --resume=" + Ck);
  EXPECT_EQ(OnStack.ExitCode, 0) << OnStack.Output;
  EXPECT_EQ(OnStack.Output, Straight.Output);
  CliResult OnReg = runCli(sample("fac.lam") +
                           " --backend=vm-reg --profile --resume=" + Ck);
  EXPECT_EQ(OnReg.ExitCode, 0) << OnReg.Output;
  EXPECT_EQ(OnReg.Output, Straight.Output);
  std::remove(Ck.c_str());
}

TEST(CliCheckpoint, ResumeRejectsADifferentProgram) {
  std::string Ck = ::testing::TempDir() + "cli_mismatch.ck";
  std::remove(Ck.c_str());
  CliResult Stop = runCli(sample("fac.lam") +
                          " --max-steps=200 --checkpoint-out=" + Ck);
  ASSERT_EQ(Stop.ExitCode, 3) << Stop.Output;
  CliResult R = runCli(sample("fib.lam") + " --resume=" + Ck);
  EXPECT_NE(R.ExitCode, 0);
  std::remove(Ck.c_str());
}

TEST(CliCheckpoint, JournalRecoveryResumesAndPrintsTail) {
  std::string Journal = ::testing::TempDir() + "cli_run.journal";
  std::remove(Journal.c_str());
  std::string Program = "letrec loop = lambda k. {loop}: if k < 1 then 42 "
                        "else loop (k - 1) in loop 3000";
  CliResult Crash = runStdin(
      Program, "--profile --journal=" + Journal +
                   " --checkpoint-every-n-steps=1000 --max-steps=5000");
  EXPECT_EQ(Crash.ExitCode, 3) << Crash.Output;

  CliResult Recovered =
      runStdin(Program, "--profile --resume-journal=" + Journal);
  EXPECT_EQ(Recovered.ExitCode, 0) << Recovered.Output;
  // FlightRecorder-style tail of the last probe events, then the resume.
  EXPECT_NE(Recovered.Output.find("last events:"), std::string::npos)
      << Recovered.Output;
  EXPECT_NE(Recovered.Output.find("pre {loop}"), std::string::npos)
      << Recovered.Output;
  EXPECT_NE(Recovered.Output.find("resuming from step"), std::string::npos)
      << Recovered.Output;
  EXPECT_NE(Recovered.Output.find("42"), std::string::npos) << Recovered.Output;

  CliResult Straight = runStdin(Program, "--profile");
  ASSERT_EQ(Straight.ExitCode, 0);
  // The resumed profile must equal the uninterrupted one.
  std::string Profile = Straight.Output.substr(Straight.Output.find("profile:"));
  EXPECT_NE(Recovered.Output.find(Profile), std::string::npos)
      << Recovered.Output;
  std::remove(Journal.c_str());
}

TEST(CliCheckpoint, MissingJournalIsAnIoError) {
  CliResult R = runStdin("1", "--resume-journal=/nonexistent/run.journal");
  EXPECT_EQ(R.ExitCode, 1) << R.Output;
}

TEST(CliCheckpoint, RecordCapacityZeroRejected) {
  CliResult R = runCli(sample("fac.lam") + " --record --record-capacity=0");
  EXPECT_EQ(R.ExitCode, 2) << R.Output;
  EXPECT_NE(R.Output.find("--record-capacity must be positive"),
            std::string::npos)
      << R.Output;
}

TEST(CliCheckpoint, RecordCapacityBoundsTheRing) {
  CliResult R = runCli(sample("fac.lam") + " --record --record-capacity=3");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  // Ring of 3: exactly the last three events survive.
  size_t Events = 0;
  for (size_t Pos = 0; (Pos = R.Output.find("exit fac", Pos)) !=
                       std::string::npos;
       ++Pos)
    ++Events;
  EXPECT_EQ(Events, 3u) << R.Output;
  EXPECT_NE(R.Output.find("exit fac = 3628800"), std::string::npos)
      << R.Output;
}

//===----------------------------------------------------------------------===//
// SIGINT escalation: first ^C cancels cooperatively, a second within the
// grace window hard-exits 130.
//===----------------------------------------------------------------------===//

namespace {

std::string writeProgram(const char *Name, const std::string &Src) {
  std::string Path = ::testing::TempDir() + Name;
  FILE *F = fopen(Path.c_str(), "w");
  EXPECT_NE(F, nullptr);
  fwrite(Src.data(), 1, Src.size(), F);
  fclose(F);
  return Path;
}

} // namespace

TEST(CliSigint, FirstInterruptCancelsCooperatively) {
  std::string Prog = writeProgram("cli_sigint_loop.lam", kDivergingProgram);
  CliResult R = runShell(std::string(MONSEM_CLI_PATH) + " " + Prog +
                         " >/dev/null 2>&1 & pid=$!; sleep 0.5; "
                         "kill -INT $pid; wait $pid");
  EXPECT_EQ(R.ExitCode, 6) << R.Output; // Outcome::Cancelled.
  std::remove(Prog.c_str());
}

TEST(CliSigint, FirstInterruptWritesAFinalCheckpoint) {
  std::string Prog = writeProgram("cli_sigint_ck.lam", kDivergingProgram);
  std::string Ck = ::testing::TempDir() + "cli_sigint.ck";
  std::remove(Ck.c_str());
  CliResult R = runShell(std::string(MONSEM_CLI_PATH) + " " + Prog +
                         " --checkpoint-out=" + Ck +
                         " >/dev/null 2>&1 & pid=$!; sleep 0.5; "
                         "kill -INT $pid; wait $pid");
  EXPECT_EQ(R.ExitCode, 6) << R.Output;
  FILE *F = fopen(Ck.c_str(), "rb");
  EXPECT_NE(F, nullptr) << "cancelled run should leave a resumable checkpoint";
  if (F)
    fclose(F);
  std::remove(Ck.c_str());
  std::remove(Prog.c_str());
}

TEST(CliSigint, SecondInterruptWithinGraceHardExits) {
  // --debug blocks reading commands from stdin (held open by `sleep`), so
  // the cooperative flag is never polled — exactly the stuck run the
  // escalation exists for.
  std::string Prog = writeProgram(
      "cli_sigint_dbg.lam",
      "letrec f = lambda x. {f(x)}: if x = 0 then 0 else f (x - 1) in f 5");
  // `sleep 6` (not longer): popen() reads until every pipeline member
  // exits, so the sleep bounds the test's runtime after the CLI dies.
  CliResult R = runShell("sleep 6 | " + std::string(MONSEM_CLI_PATH) + " " +
                         Prog +
                         " --debug >/dev/null 2>&1 & pid=$!; sleep 0.5; "
                         "kill -INT $pid; sleep 0.3; kill -INT $pid; "
                         "wait $pid");
  EXPECT_EQ(R.ExitCode, 130) << R.Output;
  std::remove(Prog.c_str());
}

//===----------------------------------------------------------------------===//
// Durability: crash injection at every checkpoint failpoint site must never
// leave a torn checkpoint at the destination, and the supervisor must
// reproduce the uninterrupted run exactly.
//===----------------------------------------------------------------------===//

namespace {

bool fileExists(const std::string &Path) {
  FILE *F = fopen(Path.c_str(), "rb");
  if (F)
    fclose(F);
  return F != nullptr;
}

const char *kLoop3000 =
    "letrec loop = lambda k. {loop}: if k < 1 then 42 "
    "else loop (k - 1) in loop 3000";

} // namespace

TEST(CliDurability, CrashAtEveryCheckpointSiteLeavesNoTornDestination) {
  const char *Sites[] = {"open",  "write",  "flush",  "sync",
                         "close", "rename", "dirsync"};
  CliResult Straight = runCli(sample("fac.lam") + " --profile");
  ASSERT_EQ(Straight.ExitCode, 0) << Straight.Output;
  for (const char *Site : Sites) {
    std::string Ck = ::testing::TempDir() + "cli_crash_" + Site + ".ck";
    std::remove(Ck.c_str());
    std::remove((Ck + ".tmp").c_str());
    CliResult R = runShell(
        "MONSEM_FAILPOINTS='checkpoint." + std::string(Site) + "=crash' " +
        MONSEM_CLI_PATH + " " + sample("fac.lam") +
        " --profile --max-steps=200 --checkpoint-out=" + Ck);
    // The injected crash _exit()s with the sentinel code, mid-save.
    EXPECT_EQ(R.ExitCode, 86) << Site << ": " << R.Output;
    // Atomic replace: the destination is either absent (the crash hit
    // before the rename landed) or a complete, resumable checkpoint.
    if (fileExists(Ck)) {
      CliResult Resumed =
          runCli(sample("fac.lam") + " --profile --resume=" + Ck);
      EXPECT_EQ(Resumed.ExitCode, 0) << Site << ": " << Resumed.Output;
      EXPECT_EQ(Resumed.Output, Straight.Output) << Site;
    }
    std::remove(Ck.c_str());
    std::remove((Ck + ".tmp").c_str());
  }
}

TEST(CliDurability, AbortPolicyFailsTheRunAndLeavesNoPartialFiles) {
  std::string Ck = ::testing::TempDir() + "cli_abort.ck";
  std::remove(Ck.c_str());
  std::string Prog = writeProgram("cli_abort.lam", kLoop3000);
  CliResult R = runCli(Prog + " --checkpoint-out=" + Ck +
                       " --checkpoint-every-n-steps=1000" +
                       " --on-durability-failure=abort" +
                       " --failpoints=checkpoint.sync=err\\(ENOSPC\\)");
  EXPECT_EQ(R.ExitCode, 2) << R.Output;
  EXPECT_NE(R.Output.find("durability fault at checkpoint"), std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("No space left on device"), std::string::npos)
      << R.Output;
  EXPECT_FALSE(fileExists(Ck));
  EXPECT_FALSE(fileExists(Ck + ".tmp"));
  std::remove(Prog.c_str());
}

TEST(CliDurability, DegradePolicyKeepsTheAnswerAndWarns) {
  std::string Ck = ::testing::TempDir() + "cli_degrade.ck";
  std::remove(Ck.c_str());
  std::string Prog = writeProgram("cli_degrade.lam", kLoop3000);
  CliResult R = runCli(Prog + " --checkpoint-out=" + Ck +
                       " --checkpoint-every-n-steps=1000" +
                       " --on-durability-failure=degrade" +
                       " --failpoints=checkpoint.sync=err\\(ENOSPC\\)");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("42"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("degraded to best-effort"), std::string::npos)
      << R.Output;
  std::remove(Ck.c_str());
  std::remove(Prog.c_str());
}

TEST(CliDurability, MalformedFailpointSpecIsAUsageError) {
  CliResult R = runCli(sample("fac.lam") + " --failpoints=nonsense");
  EXPECT_EQ(R.ExitCode, 2) << R.Output;
  EXPECT_NE(R.Output.find("bad --failpoints spec"), std::string::npos)
      << R.Output;
}

TEST(CliSupervise, SupervisedCrashesConvergeToTheUninterruptedAnswer) {
  std::string Journal = ::testing::TempDir() + "cli_supervise.journal";
  std::remove(Journal.c_str());
  std::string Prog = writeProgram("cli_supervise.lam", kLoop3000);
  // Supervisor chatter goes to stderr; drop it so stdout can be compared
  // byte-for-byte against the uninterrupted run.
  CliResult Straight = runShell("( " + std::string(MONSEM_CLI_PATH) + " " +
                                Prog + " --profile 2>/dev/null )");
  ASSERT_EQ(Straight.ExitCode, 0) << Straight.Output;
  // journal.sync fires once per checkpoint append, so every fresh attempt
  // lands more checkpoints before it crashes: the supervisor converges.
  // (@8 rather than a tighter selector keeps the exponential backoff from
  // dominating the test's runtime.)
  CliResult R = runShell(
      "( " + std::string(MONSEM_CLI_PATH) + " " + Prog +
      " --profile --journal=" + Journal +
      " --checkpoint-every-n-steps=1000 --supervise --max-restarts=60" +
      " --restart-backoff-ms=1 --failpoints='journal.sync=crash@8'" +
      " 2>/dev/null )");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_EQ(R.Output, Straight.Output);
  std::remove(Journal.c_str());
  std::remove(Prog.c_str());
}

TEST(CliSupervise, GivesUpWhenTheCrashRecursEveryAttempt) {
  std::string Journal = ::testing::TempDir() + "cli_giveup.journal";
  std::remove(Journal.c_str());
  std::string Prog = writeProgram("cli_giveup.lam", kLoop3000);
  // journal.write re-fires early in every fresh attempt, before any
  // checkpoint can land: no restart makes progress.
  CliResult R = runCli(Prog + " --profile --journal=" + Journal +
                       " --checkpoint-every-n-steps=1000 --supervise" +
                       " --max-restarts=2 --restart-backoff-ms=1" +
                       " --failpoints='journal.write=crash@5'");
  EXPECT_EQ(R.ExitCode, 1) << R.Output;
  EXPECT_NE(R.Output.find("giving up after 2 restarts"), std::string::npos)
      << R.Output;
  std::remove(Journal.c_str());
  std::remove(Prog.c_str());
}

TEST(CliSupervise, SuperviseWithoutJournalIsAUsageError) {
  CliResult R = runCli(sample("fac.lam") + " --supervise");
  EXPECT_EQ(R.ExitCode, 2) << R.Output;
  EXPECT_NE(R.Output.find("--supervise requires --journal"),
            std::string::npos)
      << R.Output;
}
