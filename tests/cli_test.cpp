//===- tests/cli_test.cpp - CLI integration tests --------------------------===//
//
// Drives the `monsem` command-line tool end-to-end over the sample
// programs (popen; no extra test infrastructure).
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#ifndef MONSEM_CLI_PATH
#error "MONSEM_CLI_PATH must be defined by the build"
#endif
#ifndef MONSEM_SOURCE_DIR
#error "MONSEM_SOURCE_DIR must be defined by the build"
#endif

namespace {

struct CliResult {
  int ExitCode;
  std::string Output; // stdout + stderr.
};

CliResult runShell(const std::string &Cmd);

CliResult runCli(const std::string &Args) {
  return runShell(std::string(MONSEM_CLI_PATH) + " " + Args);
}

CliResult runShell(const std::string &RawCmd) {
  std::string Cmd = RawCmd + " 2>&1";
  FILE *Pipe = popen(Cmd.c_str(), "r");
  EXPECT_NE(Pipe, nullptr);
  std::string Out;
  char Buf[512];
  while (size_t N = fread(Buf, 1, sizeof(Buf), Pipe))
    Out.append(Buf, N);
  int Status = pclose(Pipe);
  return CliResult{WEXITSTATUS(Status), Out};
}

std::string sample(const char *Name) {
  return std::string(MONSEM_SOURCE_DIR) + "/examples/programs/" + Name;
}

} // namespace

TEST(CliTest, PlainRun) {
  CliResult R = runCli(sample("fac.lam"));
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("3628800"), std::string::npos) << R.Output;
}

TEST(CliTest, ProfileAndCost) {
  CliResult R = runCli(sample("fib.lam") + " --profile --cost");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("profile: [fib -> 8361]"), std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("cost: [fib: calls=8361"), std::string::npos)
      << R.Output;
}

TEST(CliTest, TraceEmitsPaperFormat) {
  CliResult R = runCli(sample("fac.lam") + " --trace");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("[FAC receives (10)]"), std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("[FAC returns 3628800]"), std::string::npos);
}

TEST(CliTest, DemonFlagsSortSample) {
  CliResult R = runCli(sample("sort.lam") + " --demon-sorted");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("demon: {input}"), std::string::npos) << R.Output;
}

TEST(CliTest, CollectingMonitor) {
  CliResult R = runCli(sample("collect.lam") + " --collect");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("test -> {False, True}"), std::string::npos)
      << R.Output;
}

TEST(CliTest, VmAndInterpreterAgree) {
  CliResult Interp = runCli(sample("church.lam"));
  CliResult VM = runCli(sample("church.lam") + " --vm");
  EXPECT_EQ(Interp.ExitCode, 0);
  EXPECT_EQ(VM.ExitCode, 0);
  EXPECT_EQ(Interp.Output, VM.Output);
}

TEST(CliTest, PartialEvaluationRun) {
  CliResult R = runCli(sample("fac.lam") + " --pe --print-residual");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("residual: 3628800"), std::string::npos)
      << R.Output;
}

TEST(CliTest, LazyStrategy) {
  CliResult R = runCli(sample("church.lam") + " --strategy=need");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("12"), std::string::npos);
}

TEST(CliTest, ImperativeWatch) {
  CliResult R = runCli(sample("gcd.imp") + " --imp --imp-watch=a");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("step: a 252 -> 147"), std::string::npos)
      << R.Output;
  EXPECT_NE(R.Output.find("store: a = 21; b = 21;"), std::string::npos);
}

TEST(CliTest, MaxStepsFuel) {
  CliResult R = runShell(
      std::string("printf 'letrec loop = lambda x. loop x in loop 1' | ") +
      MONSEM_CLI_PATH + " - --max-steps=100");
  EXPECT_NE(R.ExitCode, 0);
  EXPECT_NE(R.Output.find("fuel-exhausted"), std::string::npos) << R.Output;
}

TEST(CliTest, VmHonorsGovernorFlags) {
  // Flags and backend selection funnel through the same EvalMode, so the
  // fuel limit must bite on the VM exactly as it does on the CEK machine.
  CliResult R = runShell(
      std::string("printf 'letrec loop = lambda x. loop x in loop 1' | ") +
      MONSEM_CLI_PATH + " - --vm --max-steps=100");
  EXPECT_NE(R.ExitCode, 0);
  EXPECT_NE(R.Output.find("fuel-exhausted"), std::string::npos) << R.Output;
}

TEST(CliTest, ParseErrorsExitNonzero) {
  CliResult R = runShell(std::string("printf 'lambda . oops' | ") +
                         MONSEM_CLI_PATH + " -");
  EXPECT_NE(R.ExitCode, 0);
  EXPECT_NE(R.Output.find("error"), std::string::npos);
}

TEST(CliTest, StdinImperative) {
  CliResult R = runShell(std::string("printf 'print 1+2' | ") +
                         MONSEM_CLI_PATH + " - --imp");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("3"), std::string::npos);
}

TEST(CliTest, UsageOnBadFlag) {
  CliResult R = runCli(sample("fac.lam") + " --no-such-flag");
  EXPECT_EQ(R.ExitCode, 2);
  EXPECT_NE(R.Output.find("usage:"), std::string::npos);
}

TEST(CliTest, CoverageReport) {
  CliResult R = runCli(sample("ackermann.lam") + " --coverage");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("cover: 8/8 points hit"), std::string::npos)
      << R.Output;
}

TEST(CliTest, ReplSession) {
  CliResult R = runShell(
      std::string("printf ':let sq = lambda x. x * x\\n:monitor profile\\n"
                  "sq 7\\n:quit\\n' | ") +
      MONSEM_CLI_PATH + " --repl");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("49"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("profile: [sq -> 1]"), std::string::npos)
      << R.Output;
}

TEST(CliTest, ReplRejectsBadDefinitions) {
  CliResult R = runShell(std::string("printf ':let broken = lambda .\\n"
                                     "1 + 1\\n:quit\\n' | ") +
                         MONSEM_CLI_PATH + " --repl");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("error"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("2"), std::string::npos)
      << "later evaluations must still work";
}

TEST(CliTest, PreludeQuicksort) {
  CliResult R = runCli(sample("quicksort.lam") + " --prelude");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("[1, 2, 3, 3, 5, 7, 8, 9]"), std::string::npos)
      << R.Output;
}

TEST(CliTest, ImperativeReadInput) {
  CliResult R =
      runCli(sample("average.imp") + " --imp --input=3,10,20,12");
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("14"), std::string::npos) << R.Output;
}
