//===- tests/pe_test.cpp - Partial evaluation (level 3) --------------------===//

#include "interp/Eval.h"
#include "monitors/Profiler.h"
#include "monitors/Tracer.h"
#include "pe/PartialEval.h"
#include "syntax/Printer.h"

#include "RandomProgram.h"

#include <gtest/gtest.h>

using namespace monsem;

namespace {

std::unique_ptr<ParsedProgram> parseOk(std::string_view Src) {
  auto P = ParsedProgram::parse(Src);
  EXPECT_TRUE(P->ok()) << P->diags().str();
  return P;
}

/// Specializes Src and returns the residual (printed for inspection).
struct Specialized {
  AstContext Out;
  PEResult R;
};

std::unique_ptr<Specialized> pe(std::string_view Src, PEOptions Opts = {}) {
  auto P = parseOk(Src);
  auto S = std::make_unique<Specialized>();
  S->R = partialEvaluate(S->Out, P->root(), Opts);
  return S;
}

} // namespace

TEST(PETest, FoldsClosedPrograms) {
  auto S = pe("letrec fac = lambda x. if x = 0 then 1 else "
              "x * fac (x - 1) in fac 10");
  EXPECT_FALSE(S->R.GaveUp);
  EXPECT_EQ(printExpr(S->R.Residual), "3628800");
}

TEST(PETest, FoldsListPrograms) {
  auto S = pe("letrec rev = lambda l acc. if l = [] then acc else "
              "rev (tl l) (hd l : acc) in rev [1, 2, 3] []");
  EXPECT_EQ(printExpr(S->R.Residual), "3 : 2 : 1 : []");
}

TEST(PETest, PreservesRuntimeErrors) {
  // The specializer must not fold failing primitives away or crash on
  // them; the residual still errors at run time.
  for (const char *Src : {"1 / 0", "hd []", "(2 + 3) 4"}) {
    auto S = pe(Src);
    ASSERT_FALSE(S->R.GaveUp) << Src;
    auto P = parseOk(Src);
    RunResult Orig = evaluate(P->root());
    RunResult Res = evaluate(S->R.Residual);
    EXPECT_FALSE(Res.Ok) << Src;
    EXPECT_EQ(Orig.Error, Res.Error) << Src;
  }
}

TEST(PETest, DynamicInputsResidualize) {
  // Free variables are dynamic inputs.
  auto S = pe("n * 2 + 1");
  EXPECT_FALSE(S->R.GaveUp);
  EXPECT_EQ(printExpr(S->R.Residual), "n * 2 + 1");
}

TEST(PETest, PrunesStaticConditionals) {
  auto S = pe("if 1 < 2 then n + 1 else n / 0");
  EXPECT_EQ(printExpr(S->R.Residual), "n + 1");
}

TEST(PETest, SpecializePowerToStaticExponent) {
  // The classic: power n 5 with static exponent unfolds into a product.
  const char *Power = "letrec power = lambda b e. if e = 0 then 1 else "
                      "b * power b (e - 1) in power";
  auto P = parseOk(Power);
  AstContext Out;
  AstContext ArgCtx;
  PEResult R = specializeApply(Out, P->root(), {},
                               /*NumDynamicArgs=*/2);
  ASSERT_FALSE(R.GaveUp);

  // Now specialize with the exponent static: residual contains no letrec
  // and no conditional — it is b * b * b * b * b * 1 after unfolding.
  const char *Power5 =
      "lambda b. letrec power = lambda bb e. if e = 0 then 1 else "
      "bb * power bb (e - 1) in power b 5";
  auto P5 = parseOk(Power5);
  AstContext Out5;
  PEResult R5 = partialEvaluate(Out5, P5->root());
  ASSERT_FALSE(R5.GaveUp);
  std::string Text = printExpr(R5.Residual);
  EXPECT_EQ(Text.find("letrec"), std::string::npos) << Text;
  EXPECT_EQ(Text.find("if"), std::string::npos) << Text;
  // And it computes powers.
  AstContext AppCtx;
  const Expr *App =
      AppCtx.mkApp(cloneExpr(AppCtx, R5.Residual), AppCtx.mkInt(3));
  EXPECT_EQ(evaluate(App).IntValue, 243);
}

TEST(PETest, SpecializeApplyMatchesFullApplication) {
  const char *Add3 = "lambda a b c. a + b * c";
  auto P = parseOk(Add3);
  AstContext Out;
  AstContext ArgCtx;
  std::vector<const Expr *> Static = {ArgCtx.mkInt(10)};
  PEResult R = specializeApply(Out, P->root(), Static, 2);
  ASSERT_FALSE(R.GaveUp);
  // residual(b, c) == 10 + b * c.
  AstContext AppCtx;
  const Expr *App = AppCtx.mkApp(
      AppCtx.mkApp(cloneExpr(AppCtx, R.Residual), AppCtx.mkInt(4)),
      AppCtx.mkInt(5));
  EXPECT_EQ(evaluate(App).IntValue, 30);
}

TEST(PETest, GeneratesResidualRecursionForDynamicArgs) {
  // With a dynamic argument the recursion cannot unfold: the residual
  // contains a specialized letrec.
  const char *Src = "lambda n. letrec sum = lambda k. if k = 0 then 0 else "
                    "k + sum (k - 1) in sum n";
  auto S = pe(Src);
  ASSERT_FALSE(S->R.GaveUp);
  std::string Text = printExpr(S->R.Residual);
  EXPECT_NE(Text.find("letrec"), std::string::npos) << Text;
  EXPECT_GT(S->R.Specializations, 0u);
  // Residual still computes sums.
  AstContext AppCtx;
  const Expr *App =
      AppCtx.mkApp(cloneExpr(AppCtx, S->R.Residual), AppCtx.mkInt(10));
  EXPECT_EQ(evaluate(App).IntValue, 55);
}

TEST(PETest, AnnotationsAreDynamic) {
  // Even a fully static computation keeps its annotations (and therefore
  // its monitoring events).
  auto S = pe("{A}: (2 + 3)");
  ASSERT_FALSE(S->R.GaveUp);
  EXPECT_EQ(printExpr(S->R.Residual), "{A}: 5");
}

TEST(PETest, MonitoringSemanticsIsPreserved) {
  // Profiler counts on the residual equal those on the original — the
  // specializer preserves the *monitoring* semantics, not just answers.
  const char *Src =
      "letrec mul = lambda x. lambda y. {mul}:(x*y) in "
      "letrec fac = lambda x. {fac}: if (x=0) then 1 else "
      "mul x (fac (x-1)) in fac 3";
  auto P = parseOk(Src);
  auto S = pe(Src);
  ASSERT_FALSE(S->R.GaveUp);
  CallProfiler Prof;
  Cascade C;
  C.use(Prof);
  RunResult Orig = evaluate(C, P->root());
  RunResult Res = evaluate(C, S->R.Residual);
  ASSERT_TRUE(Orig.Ok && Res.Ok) << Orig.Error << Res.Error;
  EXPECT_EQ(Orig.ValueText, Res.ValueText);
  EXPECT_EQ(Orig.FinalStates[0]->str(), Res.FinalStates[0]->str());
  EXPECT_EQ(Res.FinalStates[0]->str(), "[fac -> 4, mul -> 3]");
}

TEST(PETest, TraceOrderIsPreserved) {
  const char *Src =
      "letrec mul = lambda x. lambda y. {mul(x, y)}:(x*y) in "
      "letrec fac = lambda x. {fac(x)}:if (x=0) then 1 else "
      "mul x (fac (x-1)) in fac 3";
  auto P = parseOk(Src);
  auto S = pe(Src);
  ASSERT_FALSE(S->R.GaveUp);
  Tracer Trc;
  Cascade C;
  C.use(Trc);
  RunResult Orig = evaluate(C, P->root());
  RunResult Res = evaluate(C, S->R.Residual);
  ASSERT_TRUE(Orig.Ok && Res.Ok);
  EXPECT_EQ(Tracer::state(*Orig.FinalStates[0]).Chan.str(),
            Tracer::state(*Res.FinalStates[0]).Chan.str());
}

TEST(PETest, GivesUpGracefullyOnBudget) {
  PEOptions Opts;
  Opts.MaxSteps = 50;
  auto S = pe("letrec fac = lambda x. if x = 0 then 1 else "
              "x * fac (x - 1) in fac 20",
              Opts);
  EXPECT_TRUE(S->R.GaveUp);
  // The fallback residual is the original program: still runs correctly.
  RunResult R = evaluate(S->R.Residual);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.IntValue, 2432902008176640000);
}

TEST(PETest, ResidualsAreSmallerOrEqualInSteps) {
  // Specialization should reduce interpreter steps on closed programs.
  const char *Src = "letrec fib = lambda n. if n < 2 then n else "
                    "fib (n - 1) + fib (n - 2) in fib 12";
  auto P = parseOk(Src);
  auto S = pe(Src);
  ASSERT_FALSE(S->R.GaveUp);
  RunResult Orig = evaluate(P->root());
  RunResult Res = evaluate(S->R.Residual);
  EXPECT_EQ(Orig.ValueText, Res.ValueText);
  EXPECT_LT(Res.Steps, Orig.Steps);
}

// Differential: residual answer == original answer over generated programs.
class PEDifferentialTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(PEDifferentialTest, ResidualPreservesAnswers) {
  AstContext Ctx;
  const Expr *Prog = monsem::testing::genProgram(Ctx, GetParam());
  AstContext Out;
  PEOptions Opts;
  Opts.MaxSteps = 200000;
  PEResult R = partialEvaluate(Out, Prog, Opts);
  RunOptions RO;
  RO.MaxSteps = 1000000;
  RunResult Orig = evaluate(Prog, RO);
  RunResult Res = evaluate(R.Residual, RO);
  EXPECT_TRUE(Orig.sameOutcome(Res))
      << printExpr(Prog) << "\nresidual: " << printExpr(R.Residual)
      << "\norig: " << (Orig.Ok ? Orig.ValueText : Orig.Error)
      << "\nres:  " << (Res.Ok ? Res.ValueText : Res.Error);
}

TEST_P(PEDifferentialTest, ResidualPreservesMonitorStates) {
  AstContext Ctx;
  const Expr *Prog = monsem::testing::genProgram(Ctx, GetParam());
  AstContext Out;
  PEOptions Opts;
  Opts.MaxSteps = 200000;
  PEResult R = partialEvaluate(Out, Prog, Opts);
  CountingProfiler Count;
  Cascade C;
  C.use(Count);
  EvalMode M = C & maxSteps(1000000);
  RunResult Orig = evaluate(M, Prog);
  RunResult Res = evaluate(M, R.Residual);
  EXPECT_TRUE(Orig.sameOutcome(Res)) << printExpr(Prog);
  if (Orig.Ok && Res.Ok) {
    EXPECT_EQ(Orig.FinalStates[0]->str(), Res.FinalStates[0]->str())
        << printExpr(Prog) << "\nresidual: " << printExpr(R.Residual);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PEDifferentialTest,
                         ::testing::Range(0u, 80u));
