//===- tests/monitor_framework_test.cpp - Framework unit tests -------------===//

#include "interp/Eval.h"
#include "monitor/Cascade.h"
#include "monitors/Collecting.h"
#include "monitors/Profiler.h"
#include "monitors/Tracer.h"

#include <gtest/gtest.h>

using namespace monsem;

namespace {

Annotation bare(const char *Head) {
  Annotation A;
  A.Head = Symbol::intern(Head);
  return A;
}

Annotation header(const char *Head, std::initializer_list<const char *> Ps) {
  Annotation A;
  A.Head = Symbol::intern(Head);
  A.HasParams = true;
  for (const char *P : Ps)
    A.Params.push_back(Symbol::intern(P));
  return A;
}

Annotation qualified(const char *Qual, const char *Head) {
  Annotation A = bare(Head);
  A.Qual = Symbol::intern(Qual);
  return A;
}

/// A monitor that records every event as "<pre|post> head" lines; useful
/// for asserting dispatch order.
class RecordingState : public MonitorState {
public:
  std::vector<std::string> Events;
  std::string str() const override {
    std::string Out;
    for (const auto &E : Events)
      Out += E + ";";
    return Out;
  }
};

class RecordingMonitor : public Monitor {
public:
  explicit RecordingMonitor(std::string Name, bool AcceptAll = true)
      : Name(std::move(Name)), AcceptAll(AcceptAll) {}
  std::string_view name() const override { return Name; }
  bool accepts(const Annotation &Ann) const override { return AcceptAll; }
  std::unique_ptr<MonitorState> initialState() const override {
    return std::make_unique<RecordingState>();
  }
  void pre(const MonitorEvent &Ev, MonitorState &S) const override {
    static_cast<RecordingState &>(S).Events.push_back(
        "pre " + std::string(Ev.Ann.Head.str()));
  }
  void post(const MonitorEvent &Ev, Value V, MonitorState &S) const override {
    static_cast<RecordingState &>(S).Events.push_back(
        "post " + std::string(Ev.Ann.Head.str()) + "=" +
        toDisplayString(V));
  }

private:
  std::string Name;
  bool AcceptAll;
};

} // namespace

TEST(EnvViewTest, LookupAndRender) {
  Arena A;
  EnvNode *E = extendEnv(A, nullptr, Symbol::intern("x"), Value::mkInt(3));
  E = extendEnv(A, E, Symbol::intern("y"), Value::mkBool(true));
  EnvView V(E);
  EXPECT_EQ(V.lookup(Symbol::intern("x"))->asInt(), 3);
  EXPECT_EQ(V.lookupStr(Symbol::intern("y")), "True");
  EXPECT_EQ(V.lookupStr(Symbol::intern("zz")), "?");
  auto Bs = V.bindings();
  ASSERT_EQ(Bs.size(), 2u);
  EXPECT_EQ(Bs[0].first.str(), "y") << "innermost first";
}

TEST(CascadeTest, QualifiedAnnotationsRouteByName) {
  CallProfiler Prof;
  Tracer Trc;
  Cascade C = cascadeOf({&Prof, &Trc});
  Annotation QP = qualified("profile", "fac");
  Annotation QT = qualified("trace", "fac");
  Annotation QX = qualified("nosuch", "fac");
  EXPECT_EQ(C.resolve(QP), 0);
  EXPECT_EQ(C.resolve(QT), 1);
  EXPECT_EQ(C.resolve(QX), -1);
}

TEST(CascadeTest, ShapeDisjointMonitorsResolveUniquely) {
  CallProfiler Prof; // Accepts bare labels.
  Tracer Trc;        // Accepts function headers.
  Cascade C = cascadeOf({&Prof, &Trc});
  Annotation B = bare("fac");
  Annotation H = header("fac", {"x"});
  EXPECT_EQ(C.resolve(B), 0);
  EXPECT_EQ(C.resolve(H), 1);
}

TEST(CascadeTest, AmbiguityIsDetected) {
  CallProfiler Prof;
  CollectingMonitor Coll; // Both accept bare labels.
  Cascade C = cascadeOf({&Prof, &Coll});
  DiagnosticSink D;
  Annotation B = bare("x");
  EXPECT_EQ(C.resolve(B, &D), -2);
  EXPECT_TRUE(D.hasErrors());
}

TEST(CascadeTest, ValidateForProgram) {
  auto P = ParsedProgram::parse("letrec f = lambda x. {f}: x in f 1");
  ASSERT_TRUE(P->ok());
  CallProfiler Prof;
  CollectingMonitor Coll;
  Cascade Bad = cascadeOf({&Prof, &Coll});
  DiagnosticSink D;
  EXPECT_FALSE(Bad.validateFor(P->root(), D));

  // Qualified annotations fix the ambiguity.
  auto Q =
      ParsedProgram::parse("letrec f = lambda x. {profile:f}: x in f 1");
  ASSERT_TRUE(Q->ok());
  DiagnosticSink D2;
  EXPECT_TRUE(Bad.validateFor(Q->root(), D2));
}

TEST(CascadeTest, EvaluateRejectsAmbiguousCascades) {
  auto P = ParsedProgram::parse("letrec f = lambda x. {f}: x in f 1");
  ASSERT_TRUE(P->ok());
  CallProfiler Prof;
  CollectingMonitor Coll;
  Cascade Bad = cascadeOf({&Prof, &Coll});
  RunResult R = evaluate(Bad, P->root());
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("claimed by two monitors"), std::string::npos);
}

TEST(RuntimeCascadeTest, DispatchesPreAndPostInOrder) {
  auto P = ParsedProgram::parse("{a}: ({b}: 1) + ({c}: 2)");
  ASSERT_TRUE(P->ok());
  RecordingMonitor Rec("rec");
  Cascade C;
  C.use(Rec);
  RunResult R = evaluate(C, P->root());
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.FinalStates[0]->str(),
            "pre a;pre b;post b=1;pre c;post c=2;post a=3;");
}

TEST(RuntimeCascadeTest, NestedAnnotationsFireOutsideInThenInsideOut) {
  auto P = ParsedProgram::parse("{outer}: {inner}: 5");
  ASSERT_TRUE(P->ok());
  RecordingMonitor Rec("rec");
  Cascade C;
  C.use(Rec);
  RunResult R = evaluate(C, P->root());
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.FinalStates[0]->str(),
            "pre outer;pre inner;post inner=5;post outer=5;");
}

TEST(RuntimeCascadeTest, UnclaimedAnnotationsAreIgnored) {
  auto P = ParsedProgram::parse("{trace:zzz}: 7");
  ASSERT_TRUE(P->ok());
  CallProfiler Prof;
  Cascade C;
  C.use(Prof);
  RunResult R = evaluate(C, P->root());
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.IntValue, 7);
  EXPECT_EQ(CallProfiler::state(*R.FinalStates[0]).Counters.size(), 0u);
}

TEST(RuntimeCascadeTest, InnerStatesAreObservable) {
  // Section 6: an outer monitor reads the state of an inner one. The
  // "meta" monitor snapshots the profiler's state at each of its events.
  class MetaState : public MonitorState {
  public:
    std::vector<std::string> Snapshots;
    std::string str() const override {
      return Snapshots.empty() ? "" : Snapshots.back();
    }
  };
  class MetaMonitor : public Monitor {
  public:
    std::string_view name() const override { return "meta"; }
    bool accepts(const Annotation &Ann) const override {
      return Ann.Head.str() == "snap";
    }
    std::unique_ptr<MonitorState> initialState() const override {
      return std::make_unique<MetaState>();
    }
    void pre(const MonitorEvent &Ev, MonitorState &S) const override {
      ASSERT_EQ(Ev.Ctx.numInnerMonitors(), 1u);
      static_cast<MetaState &>(S).Snapshots.push_back(
          Ev.Ctx.innerState(0).str());
    }
    void post(const MonitorEvent &, Value, MonitorState &) const override {}
  };

  auto P = ParsedProgram::parse(
      "letrec f = lambda x. {f}: x in {meta:snap}: (f 1 + f 2)");
  ASSERT_TRUE(P->ok());
  CallProfiler Prof;
  MetaMonitor Meta;
  Cascade C;
  C.use(Prof).use(Meta); // Prof is inner, Meta outer.
  RunResult R = evaluate(C, P->root());
  ASSERT_TRUE(R.Ok) << R.Error;
  const auto &MS = static_cast<const MetaState &>(*R.FinalStates[1]);
  ASSERT_EQ(MS.Snapshots.size(), 1u);
  EXPECT_EQ(MS.Snapshots[0], "[]") << "snapshot taken before any f call";
  EXPECT_EQ(R.FinalStates[0]->str(), "[f -> 2]");
}

TEST(SessionApiTest, AmpersandComposition) {
  auto P = ParsedProgram::parse(
      "letrec mul = lambda x. lambda y. {mul(x, y)}: {mul}:(x*y) in "
      "letrec fac = lambda x. {fac(x)}: {fac}: if (x=0) then 1 else "
      "mul x (fac (x-1)) in fac 3");
  ASSERT_TRUE(P->ok());
  CallProfiler Prof;
  Tracer Trc;
  RunResult R = evaluate(Prof & Trc & kStrict, P->root());
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.IntValue, 6);
  ASSERT_EQ(R.FinalStates.size(), 2u);
  EXPECT_EQ(R.FinalStates[0]->str(), "[fac -> 4, mul -> 3]");

  std::string Desc = describeStates((Prof & Trc).C, R);
  EXPECT_NE(Desc.find("profile: [fac -> 4, mul -> 3]"), std::string::npos);
}

TEST(SessionApiTest, StrategySelection) {
  auto P = ParsedProgram::parse("(lambda x. 42) (hd [])");
  ASSERT_TRUE(P->ok());
  CallProfiler Prof;
  EXPECT_FALSE(evaluate(Prof & kStrict, P->root()).Ok);
  EXPECT_EQ(evaluate(Prof & kByNeed, P->root()).IntValue, 42);
  EXPECT_EQ(evaluate(Prof & kByName, P->root()).IntValue, 42);
}

TEST(CascadeTest, ReportUnclaimedAnnotations) {
  auto P = ParsedProgram::parse(
      "({profile:a}: 1) + ({typo:b}: 2) + ({c(x)}: 3)");
  ASSERT_TRUE(P->ok());
  CallProfiler Prof; // Claims {profile:...} and bare labels; not headers.
  Cascade C;
  C.use(Prof);
  DiagnosticSink Diags;
  unsigned N = C.reportUnclaimed(P->root(), Diags);
  EXPECT_EQ(N, 2u) << Diags.str();
  EXPECT_NE(Diags.str().find("{typo:b}"), std::string::npos);
  EXPECT_NE(Diags.str().find("{c(x)}"), std::string::npos);
  EXPECT_FALSE(Diags.hasErrors()) << "warnings, not errors";
}
