//===- tests/value_test.cpp - Value/env/primitive unit tests ---------------===//

#include "semantics/Answer.h"
#include "semantics/Primitives.h"
#include "semantics/Value.h"

#include <gtest/gtest.h>

using namespace monsem;

namespace {

Value list(Arena &A, std::initializer_list<int64_t> Xs) {
  Value V = Value::mkNil();
  std::vector<int64_t> Rev(Xs);
  for (size_t I = Rev.size(); I-- > 0;)
    V = Value::mkCell(A.create<Cell>(Value::mkInt(Rev[I]), V));
  return V;
}

} // namespace

TEST(ValueTest, Kinds) {
  EXPECT_TRUE(Value::mkInt(3).is(ValueKind::Int));
  EXPECT_TRUE(Value::mkBool(true).is(ValueKind::Bool));
  EXPECT_TRUE(Value::mkNil().is(ValueKind::Nil));
  EXPECT_TRUE(Value().is(ValueKind::Unit));
  EXPECT_TRUE(Value::mkPrim1(Prim1Op::Hd).isFunction());
  EXPECT_FALSE(Value::mkInt(0).isFunction());
}

TEST(ValueTest, Display) {
  Arena A;
  EXPECT_EQ(toDisplayString(Value::mkInt(-7)), "-7");
  EXPECT_EQ(toDisplayString(Value::mkBool(true)), "True");
  EXPECT_EQ(toDisplayString(Value::mkBool(false)), "False");
  EXPECT_EQ(toDisplayString(Value::mkNil()), "[]");
  EXPECT_EQ(toDisplayString(list(A, {1, 2, 3})), "[1, 2, 3]");
  std::string S = "hi";
  EXPECT_EQ(toDisplayString(Value::mkStr(&S)), "hi");
  EXPECT_EQ(toDisplayString(Value::mkPrim1(Prim1Op::Hd)), "<prim hd>");
}

TEST(ValueTest, EqualityDeep) {
  Arena A;
  bool Ok = true;
  EXPECT_TRUE(valueEquals(list(A, {1, 2}), list(A, {1, 2}), Ok));
  EXPECT_TRUE(Ok);
  EXPECT_FALSE(valueEquals(list(A, {1, 2}), list(A, {1, 3}), Ok));
  EXPECT_FALSE(valueEquals(list(A, {1}), Value::mkNil(), Ok));
  EXPECT_FALSE(valueEquals(Value::mkInt(1), Value::mkBool(true), Ok));
}

TEST(ValueTest, EqualityOnFunctionsIsUndefined) {
  Arena A;
  Closure *C =
      A.create<Closure>(nullptr, static_cast<EnvNode *>(nullptr));
  bool Ok = true;
  valueEquals(Value::mkClosure(C), Value::mkClosure(C), Ok);
  EXPECT_FALSE(Ok);
}

TEST(EnvTest, LookupFindsInnermost) {
  Arena A;
  Symbol X = Symbol::intern("x"), Y = Symbol::intern("y");
  EnvNode *E1 = extendEnv(A, nullptr, X, Value::mkInt(1));
  EnvNode *E2 = extendEnv(A, E1, Y, Value::mkInt(2));
  EnvNode *E3 = extendEnv(A, E2, X, Value::mkInt(3));
  EXPECT_EQ(lookupEnv(E3, X)->Val.asInt(), 3);
  EXPECT_EQ(lookupEnv(E3, Y)->Val.asInt(), 2);
  EXPECT_EQ(lookupEnv(E1, Y), nullptr);
  EXPECT_EQ(lookupEnv(nullptr, X), nullptr);
}

TEST(PrimTest, Arithmetic) {
  Arena A;
  EXPECT_EQ(applyPrim2(Prim2Op::Add, Value::mkInt(2), Value::mkInt(3), A)
                .Val.asInt(),
            5);
  EXPECT_EQ(applyPrim2(Prim2Op::Sub, Value::mkInt(2), Value::mkInt(3), A)
                .Val.asInt(),
            -1);
  EXPECT_EQ(applyPrim2(Prim2Op::Mul, Value::mkInt(4), Value::mkInt(3), A)
                .Val.asInt(),
            12);
  EXPECT_EQ(applyPrim2(Prim2Op::Div, Value::mkInt(7), Value::mkInt(2), A)
                .Val.asInt(),
            3);
  EXPECT_EQ(applyPrim2(Prim2Op::Mod, Value::mkInt(7), Value::mkInt(2), A)
                .Val.asInt(),
            1);
  EXPECT_EQ(applyPrim2(Prim2Op::Min, Value::mkInt(7), Value::mkInt(2), A)
                .Val.asInt(),
            2);
  EXPECT_EQ(applyPrim2(Prim2Op::Max, Value::mkInt(7), Value::mkInt(2), A)
                .Val.asInt(),
            7);
}

TEST(PrimTest, DivisionByZero) {
  Arena A;
  EXPECT_FALSE(applyPrim2(Prim2Op::Div, Value::mkInt(1), Value::mkInt(0), A)
                   .Ok);
  EXPECT_FALSE(applyPrim2(Prim2Op::Mod, Value::mkInt(1), Value::mkInt(0), A)
                   .Ok);
}

TEST(PrimTest, TypeErrorsCarryMessages) {
  Arena A;
  PrimResult R =
      applyPrim2(Prim2Op::Add, Value::mkBool(true), Value::mkInt(1), A);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("integer"), std::string::npos);
}

TEST(PrimTest, Comparisons) {
  Arena A;
  EXPECT_TRUE(applyPrim2(Prim2Op::Lt, Value::mkInt(1), Value::mkInt(2), A)
                  .Val.asBool());
  EXPECT_TRUE(applyPrim2(Prim2Op::Ge, Value::mkInt(2), Value::mkInt(2), A)
                  .Val.asBool());
  std::string S1 = "abc", S2 = "abd";
  EXPECT_TRUE(applyPrim2(Prim2Op::Lt, Value::mkStr(&S1), Value::mkStr(&S2), A)
                  .Val.asBool());
}

TEST(PrimTest, ListOps) {
  Arena A;
  Value L = applyPrim2(Prim2Op::Cons, Value::mkInt(1), Value::mkNil(), A).Val;
  EXPECT_EQ(applyPrim1(Prim1Op::Hd, L, A).Val.asInt(), 1);
  EXPECT_TRUE(applyPrim1(Prim1Op::Tl, L, A).Val.is(ValueKind::Nil));
  EXPECT_FALSE(applyPrim1(Prim1Op::Null, L, A).Val.asBool());
  EXPECT_TRUE(applyPrim1(Prim1Op::Null, Value::mkNil(), A).Val.asBool());
  EXPECT_FALSE(applyPrim1(Prim1Op::Hd, Value::mkNil(), A).Ok);
  EXPECT_FALSE(applyPrim1(Prim1Op::Tl, Value::mkNil(), A).Ok);
  EXPECT_FALSE(applyPrim1(Prim1Op::Null, Value::mkInt(3), A).Ok);
}

TEST(PrimTest, Predicates) {
  Arena A;
  EXPECT_TRUE(applyPrim1(Prim1Op::IsInt, Value::mkInt(1), A).Val.asBool());
  EXPECT_FALSE(applyPrim1(Prim1Op::IsInt, Value::mkNil(), A).Val.asBool());
  EXPECT_TRUE(
      applyPrim1(Prim1Op::IsBool, Value::mkBool(false), A).Val.asBool());
  EXPECT_TRUE(applyPrim1(Prim1Op::IsFun, Value::mkPrim1(Prim1Op::Hd), A)
                  .Val.asBool());
}

TEST(PrimTest, NegAbsNot) {
  Arena A;
  EXPECT_EQ(applyPrim1(Prim1Op::Neg, Value::mkInt(5), A).Val.asInt(), -5);
  EXPECT_EQ(applyPrim1(Prim1Op::Abs, Value::mkInt(-5), A).Val.asInt(), 5);
  EXPECT_TRUE(applyPrim1(Prim1Op::Not, Value::mkBool(false), A).Val.asBool());
  EXPECT_FALSE(applyPrim1(Prim1Op::Not, Value::mkInt(1), A).Ok);
}

TEST(InitialEnvTest, BindsPrimitives) {
  Arena A;
  EnvNode *Env = initialEnv(A);
  EXPECT_NE(lookupEnv(Env, Symbol::intern("hd")), nullptr);
  EXPECT_NE(lookupEnv(Env, Symbol::intern("min")), nullptr);
  EXPECT_EQ(lookupEnv(Env, Symbol::intern("nosuch")), nullptr);
}

TEST(AnswerAlgebraTest, StdAndString) {
  EXPECT_EQ(StdAnswerAlgebra::instance().render(Value::mkInt(6)), "6");
  EXPECT_EQ(StringAnswerAlgebra::instance().render(Value::mkInt(6)),
            "The result is: 6");
}
