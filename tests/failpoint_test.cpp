//===- tests/failpoint_test.cpp - Fault injection and durability -----------===//
//
// The failpoint harness itself (spec parsing, selectors, FileSys wrappers)
// and the durability behavior it exists to exercise: hardened checkpoint
// writes (atomic, no temp leak, every site's failure handled), journal
// appends with retry/backoff and torn-tail restoration, the three
// OnDurabilityFailure policies, and crash-point enumeration over every
// byte-prefix truncation of a journal and every failpoint site of a
// checkpoint write.
//
//===----------------------------------------------------------------------===//

#include "interp/Eval.h"
#include "monitors/Profiler.h"
#include "support/Checkpoint.h"
#include "support/Durability.h"
#include "support/FailPoint.h"
#include "support/Journal.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdio>
#include <fstream>
#include <sys/stat.h>

using namespace monsem;

namespace {

std::string tempPath(const char *Name) {
  std::string P = ::testing::TempDir() + Name;
  std::remove(P.c_str());
  std::remove((P + ".tmp").c_str());
  return P;
}

bool fileExists(const std::string &Path) {
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0;
}

std::vector<uint8_t> readAll(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(In),
                              std::istreambuf_iterator<char>());
}

void writeAll(const std::string &Path, const std::vector<uint8_t> &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(reinterpret_cast<const char *>(Bytes.data()),
            static_cast<std::streamsize>(Bytes.size()));
}

Checkpoint makeTestCheckpoint() {
  CheckpointHeader H;
  H.ProgramFingerprint = 0xfeedface;
  H.SavedSteps = 41;
  Serializer S = Checkpoint::begin(H);
  for (int I = 0; I < 64; ++I)
    S.writeU64(static_cast<uint64_t>(I) * 7);
  return Checkpoint::seal(std::move(S));
}

//===----------------------------------------------------------------------===//
// Spec parsing and selector arithmetic
//===----------------------------------------------------------------------===//

TEST(FailPointSpec, ParsesSitesActionsAndSelectors) {
  ScopedFailPoints FP("journal.write=err(ENOSPC);checkpoint.sync=crash(5)*2;"
                      "journal.flush=short(3)@2");
  ASSERT_TRUE(FP.ok()) << FP.error();
  EXPECT_TRUE(failPointsArmed());

  FailAction A = failPointHit(FailSite::JournalWrite);
  EXPECT_EQ(A.K, FailAction::Kind::Error);
  EXPECT_EQ(A.Errno, ENOSPC);

  // *2: first two hits trigger, then disarmed.
  EXPECT_EQ(failPointHit(FailSite::CheckpointSync).K,
            FailAction::Kind::Crash);
  A = failPointHit(FailSite::CheckpointSync);
  EXPECT_EQ(A.K, FailAction::Kind::Crash);
  EXPECT_EQ(A.Bytes, 5u);
  EXPECT_EQ(failPointHit(FailSite::CheckpointSync).K, FailAction::Kind::None);

  // @2: first hit passes, triggers from the second on.
  EXPECT_EQ(failPointHit(FailSite::JournalFlush).K, FailAction::Kind::None);
  A = failPointHit(FailSite::JournalFlush);
  EXPECT_EQ(A.K, FailAction::Kind::Short);
  EXPECT_EQ(A.Bytes, 3u);
  EXPECT_EQ(failPointHit(FailSite::JournalFlush).K, FailAction::Kind::Short);

  EXPECT_EQ(failPointHitCount(FailSite::CheckpointSync), 3u);
}

TEST(FailPointSpec, RejectsMalformedSpecs) {
  for (const char *Bad :
       {"nonsense", "journal.write", "journal.write=explode",
        "bogus.site=err", "journal.write=err(EWHAT)", "journal.write=short",
        "journal.write=err*x", "journal.write=err@"}) {
    std::string Err;
    EXPECT_FALSE(installFailPoints(Bad, Err)) << Bad;
    EXPECT_FALSE(Err.empty()) << Bad;
  }
  clearFailPoints();
}

TEST(FailPointSpec, EmptySpecClears) {
  std::string Err;
  ASSERT_TRUE(installFailPoints("journal.write=err", Err));
  EXPECT_TRUE(failPointsArmed());
  ASSERT_TRUE(installFailPoints("", Err));
  EXPECT_FALSE(failPointsArmed());
  EXPECT_EQ(failPointHit(FailSite::JournalWrite).K, FailAction::Kind::None);
}

TEST(FailPointSpec, SiteNamesRoundTrip) {
  for (unsigned I = 0; I < kNumFailSites; ++I) {
    std::string Spec =
        std::string(failPointSiteName(static_cast<FailSite>(I))) + "=err";
    std::string Err;
    EXPECT_TRUE(installFailPoints(Spec, Err)) << Spec << ": " << Err;
  }
  clearFailPoints();
}

//===----------------------------------------------------------------------===//
// Hardened checkpoint writes: every site's failure is survivable
//===----------------------------------------------------------------------===//

// For each failpoint site of the checkpoint write path: saveFile reports
// failure, leaves no temp file behind, and the destination is either
// absent or still the old (valid) checkpoint — never a torn one.
TEST(CheckpointDurability, EveryFailureSiteIsAtomicAndLeakFree) {
  const char *Sites[] = {"checkpoint.open",  "checkpoint.write",
                         "checkpoint.flush", "checkpoint.sync",
                         "checkpoint.close", "checkpoint.rename",
                         "checkpoint.dirsync"};
  Checkpoint CK = makeTestCheckpoint();
  for (const char *Site : Sites) {
    std::string Path = tempPath("fp_ck_site.bin");
    ScopedFailPoints FP(std::string(Site) + "=err(ENOSPC)");
    ASSERT_TRUE(FP.ok()) << FP.error();
    std::string Err;
    EXPECT_FALSE(CK.saveFile(Path, Err)) << Site;
    EXPECT_FALSE(Err.empty()) << Site;
    EXPECT_FALSE(fileExists(Path + ".tmp")) << Site << ": temp file leaked";
    if (fileExists(Path)) {
      // dirsync fails after the rename: the destination must be complete.
      std::string LoadErr;
      EXPECT_TRUE(Checkpoint::loadFile(Path, LoadErr).valid()) << Site;
    }
  }
}

// A failed overwrite must leave the previous checkpoint intact.
TEST(CheckpointDurability, FailedOverwriteKeepsOldCheckpoint) {
  std::string Path = tempPath("fp_ck_keep.bin");
  Checkpoint Old = makeTestCheckpoint();
  std::string Err;
  ASSERT_TRUE(Old.saveFile(Path, Err)) << Err;
  std::vector<uint8_t> OldBytes = readAll(Path);

  ScopedFailPoints FP("checkpoint.write=short(10)");
  CheckpointHeader H;
  H.SavedSteps = 99;
  Serializer S = Checkpoint::begin(H);
  S.writeU64(1);
  Checkpoint New = Checkpoint::seal(std::move(S));
  EXPECT_FALSE(New.saveFile(Path, Err));
  EXPECT_EQ(readAll(Path), OldBytes);
  EXPECT_FALSE(fileExists(Path + ".tmp"));
}

// A short write injects a genuinely torn temp file; the load path must
// reject those bytes (checksum) — the belt to rename's suspenders.
TEST(CheckpointDurability, TornBytesAreRejectedOnLoad) {
  Checkpoint CK = makeTestCheckpoint();
  std::vector<uint8_t> Torn(CK.bytes().begin(), CK.bytes().end() - 5);
  std::string Path = tempPath("fp_ck_torn.bin");
  writeAll(Path, Torn);
  std::string Err;
  EXPECT_FALSE(Checkpoint::loadFile(Path, Err).valid());
  EXPECT_FALSE(Err.empty());
}

//===----------------------------------------------------------------------===//
// Journal appends: error checking, retry, boundary restoration
//===----------------------------------------------------------------------===//

TEST(JournalDurability, AppendFailureIsReportedAndSticky) {
  std::string Path = tempPath("fp_j_fail.journal");
  std::string Err;
  auto J = Journal::open(Path, Err);
  ASSERT_TRUE(J) << Err;
  ASSERT_TRUE(J->appendEvent(1, "ok"));
  {
    ScopedFailPoints FP("journal.write=err(ENOSPC)*1");
    EXPECT_FALSE(J->appendEvent(2, "doomed"));
  }
  EXPECT_TRUE(J->failed());
  EXPECT_NE(J->error().find("No space left"), std::string::npos)
      << J->error();
  // The failed append restored the record boundary: later appends are
  // durable and recovery sees no torn bytes.
  EXPECT_TRUE(J->appendEvent(3, "after"));
  J.reset();
  JournalRecovery R = recoverJournal(Path);
  EXPECT_EQ(R.TornBytes, 0u);
  ASSERT_EQ(R.TotalEvents, 2u);
  EXPECT_EQ(R.Tail.back().Text, "after");
}

TEST(JournalDurability, TransientErrorsAreRetried) {
  std::string Path = tempPath("fp_j_retry.journal");
  std::string Err;
  JournalOptions JO;
  JO.RetryBackoffUs = 1; // Keep the test fast.
  auto J = Journal::open(Path, Err, JO);
  ASSERT_TRUE(J) << Err;
  // EINTR twice, then clean: the append succeeds transparently.
  ScopedFailPoints FP("journal.write=err(EINTR)*2");
  EXPECT_TRUE(J->appendEvent(1, "survives"));
  EXPECT_FALSE(J->failed());
  J.reset();
  JournalRecovery R = recoverJournal(Path);
  EXPECT_EQ(R.TotalEvents, 1u);
  EXPECT_EQ(R.TornBytes, 0u);
}

TEST(JournalDurability, PersistentTransientErrorExhaustsRetryBudget) {
  std::string Path = tempPath("fp_j_budget.journal");
  std::string Err;
  JournalOptions JO;
  JO.MaxRetries = 2;
  JO.RetryBackoffUs = 1;
  auto J = Journal::open(Path, Err, JO);
  ASSERT_TRUE(J) << Err;
  ScopedFailPoints FP("journal.write=err(EINTR)");
  EXPECT_FALSE(J->appendEvent(1, "never lands"));
  EXPECT_TRUE(J->failed());
  // 1 initial attempt + 2 retries.
  EXPECT_EQ(failPointHitCount(FailSite::JournalWrite), 3u);
}

TEST(JournalDurability, ShortWriteLeavesNoTornTail) {
  std::string Path = tempPath("fp_j_short.journal");
  std::string Err;
  auto J = Journal::open(Path, Err);
  ASSERT_TRUE(J) << Err;
  ASSERT_TRUE(J->appendEvent(1, "good"));
  {
    // Persist 4 real bytes of the frame, then fail: a genuine torn write.
    ScopedFailPoints FP("journal.write=short(4)*1");
    EXPECT_FALSE(J->appendEvent(2, "torn"));
  }
  EXPECT_TRUE(J->appendEvent(3, "recovered"));
  J.reset();
  JournalRecovery R = recoverJournal(Path);
  EXPECT_EQ(R.TornBytes, 0u) << "failed append left partial bytes behind";
  ASSERT_EQ(R.TotalEvents, 2u);
  EXPECT_EQ(R.Tail[0].Text, "good");
  EXPECT_EQ(R.Tail[1].Text, "recovered");
}

// Satellite 1: open() truncates a torn tail, so records appended after a
// crash are recoverable instead of sitting behind the bad record.
TEST(JournalDurability, OpenTruncatesTornTailBeforeAppending) {
  std::string Path = tempPath("fp_j_reopen.journal");
  std::string Err;
  {
    auto J = Journal::open(Path, Err);
    ASSERT_TRUE(J) << Err;
    ASSERT_TRUE(J->appendEvent(1, "before crash"));
  }
  // Simulate a crash mid-append: half a record at the end of the file.
  std::vector<uint8_t> Bytes = readAll(Path);
  std::vector<uint8_t> Garbage = {2, 200, 0, 0, 0, 9, 9, 9};
  std::vector<uint8_t> WithTorn = Bytes;
  WithTorn.insert(WithTorn.end(), Garbage.begin(), Garbage.end());
  writeAll(Path, WithTorn);

  {
    auto J = Journal::open(Path, Err);
    ASSERT_TRUE(J) << Err;
    ASSERT_TRUE(J->appendEvent(2, "after crash"));
  }
  JournalRecovery R = recoverJournal(Path);
  EXPECT_EQ(R.TornBytes, 0u);
  ASSERT_EQ(R.TotalEvents, 2u) << "post-crash record hidden by torn tail";
  EXPECT_EQ(R.Tail[1].Text, "after crash");
}

TEST(JournalDurability, OpenFailureInjection) {
  ScopedFailPoints FP("journal.open=err(EACCES)");
  std::string Err;
  EXPECT_FALSE(Journal::open(tempPath("fp_j_open.journal"), Err));
  EXPECT_NE(Err.find("Permission denied"), std::string::npos) << Err;
}

//===----------------------------------------------------------------------===//
// Policies through the evaluate() drivers
//===----------------------------------------------------------------------===//

const char *kLoopSrc = "letrec loop = lambda k. {loop}: if k < 1 then 42 "
                       "else loop (k - 1) in loop 200";

TEST(DurabilityPolicy, AbortEndsTheRunOnJournalFailure) {
  auto P = ParsedProgram::parse(kLoopSrc);
  ASSERT_TRUE(P->ok());
  std::string Path = tempPath("fp_pol_abort.journal");
  std::string Err;
  auto J = Journal::open(Path, Err);
  ASSERT_TRUE(J) << Err;
  CallProfiler Prof;
  RunResult R = evaluate(
      Prof & journalInto(*J) &
          onDurabilityFailure(OnDurabilityFailure::Abort) &
          failpointsSpec("journal.write=err(ENOSPC)@5"),
      P->root());
  clearFailPoints();
  EXPECT_EQ(R.St, Outcome::Error);
  EXPECT_NE(R.Error.find("durable journal write failed"), std::string::npos)
      << R.Error;
  ASSERT_EQ(R.DurabilityFaults.size(), 1u);
  EXPECT_EQ(R.DurabilityFaults[0].Site, "journal");
}

TEST(DurabilityPolicy, DegradeKeepsTheRunAliveAndRecordsFaults) {
  auto P = ParsedProgram::parse(kLoopSrc);
  ASSERT_TRUE(P->ok());
  std::string Path = tempPath("fp_pol_degrade.journal");
  std::string Err;
  auto J = Journal::open(Path, Err);
  ASSERT_TRUE(J) << Err;
  CallProfiler Prof;
  RunResult R = evaluate(
      Prof & journalInto(*J) &
          onDurabilityFailure(OnDurabilityFailure::DegradeToBestEffort) &
          failpointsSpec("journal.write=err(ENOSPC)@5"),
      P->root());
  unsigned WriteHits = failPointHitCount(FailSite::JournalWrite);
  clearFailPoints();
  ASSERT_EQ(R.St, Outcome::Ok);
  EXPECT_EQ(R.IntValue, 42);
  ASSERT_EQ(R.DurabilityFaults.size(), 1u);
  EXPECT_TRUE(R.DurabilityFaults[0].Demoted);
  // Degradation is immediate: exactly one failing append happened, the
  // rest were skipped (the failpoint would have fired on every later one).
  EXPECT_EQ(WriteHits, 5u);
}

TEST(DurabilityPolicy, RetryThenDegradeToleratesTheBudget) {
  auto P = ParsedProgram::parse(kLoopSrc);
  ASSERT_TRUE(P->ok());
  std::string Path = tempPath("fp_pol_retry.journal");
  std::string Err;
  auto J = Journal::open(Path, Err);
  ASSERT_TRUE(J) << Err;
  CallProfiler Prof;
  RunResult R = evaluate(
      Prof & journalInto(*J) &
          onDurabilityFailure(OnDurabilityFailure::RetryThenDegrade, 2) &
          failpointsSpec("journal.write=err(EIO)"),
      P->root());
  clearFailPoints();
  ASSERT_EQ(R.St, Outcome::Ok);
  EXPECT_EQ(R.IntValue, 42);
  // Budget 2 tolerated failures, the 3rd demoted: exactly 3 faults.
  ASSERT_EQ(R.DurabilityFaults.size(), 3u);
  EXPECT_FALSE(R.DurabilityFaults[0].Demoted);
  EXPECT_FALSE(R.DurabilityFaults[1].Demoted);
  EXPECT_TRUE(R.DurabilityFaults[2].Demoted);
}

TEST(DurabilityPolicy, CheckpointSinkFailuresDegradeOnAllBackends) {
  for (Backend B : {Backend::CEK, Backend::VM, Backend::VMRegister}) {
    auto P = ParsedProgram::parse(kLoopSrc);
    ASSERT_TRUE(P->ok());
    std::string Path = tempPath("fp_pol_cksink.journal");
    std::string Err;
    auto J = Journal::open(Path, Err);
    ASSERT_TRUE(J) << Err;
    CallProfiler Prof;
    RunResult R = evaluate(
        Prof & BackendTag{B} & journalInto(*J) & checkpointEveryNSteps(100) &
            onDurabilityFailure(OnDurabilityFailure::DegradeToBestEffort) &
            failpointsSpec("journal.sync=err(ENOSPC)"),
        P->root());
    clearFailPoints();
    ASSERT_EQ(R.St, Outcome::Ok) << R.Error;
    EXPECT_EQ(R.IntValue, 42);
    ASSERT_GE(R.DurabilityFaults.size(), 1u);
    EXPECT_EQ(R.DurabilityFaults[0].Site, "checkpoint");
    EXPECT_TRUE(R.DurabilityFaults[0].Demoted);
  }
}

TEST(DurabilityPolicy, ParseAndNameRoundTrip) {
  for (OnDurabilityFailure P :
       {OnDurabilityFailure::Abort, OnDurabilityFailure::DegradeToBestEffort,
        OnDurabilityFailure::RetryThenDegrade}) {
    OnDurabilityFailure Out;
    ASSERT_TRUE(parseDurabilityPolicy(durabilityPolicyName(P), Out));
    EXPECT_EQ(Out, P);
  }
  OnDurabilityFailure Out;
  EXPECT_FALSE(parseDurabilityPolicy("never", Out));
}

//===----------------------------------------------------------------------===//
// Crash-point enumeration: every byte-prefix truncation of a journal
//===----------------------------------------------------------------------===//

// Satellite 4: build a journal with >= 3 events and >= 2 checkpoints, then
// replay recovery against *every* prefix truncation. Invariants: recovery
// never returns a corrupt record, never drops a fully-flushed record, and
// reopening at any truncation point leaves an appendable journal.
TEST(CrashEnumeration, EveryPrefixTruncationRecoversTheValidPrefix) {
  std::string Path = tempPath("fp_enum.journal");
  std::string Err;
  Checkpoint CK = makeTestCheckpoint();
  // Interleave events and checkpoints; record the byte offset and expected
  // state after each complete record.
  struct Mark {
    size_t Bytes;          // Journal size after this record.
    uint64_t Events;       // Complete events so far.
    bool HasCheckpoint;    // A checkpoint record is fully on disk.
  };
  std::vector<Mark> Marks;
  {
    auto J = Journal::open(Path, Err);
    ASSERT_TRUE(J) << Err;
    uint64_t Events = 0;
    bool HasCK = false;
    auto Note = [&]() {
      Marks.push_back(Mark{readAll(Path).size(), Events, HasCK});
    };
    ASSERT_TRUE(J->appendEvent(1, "alpha"));
    ++Events;
    Note();
    ASSERT_TRUE(J->appendEvent(2, "beta"));
    ++Events;
    Note();
    ASSERT_TRUE(J->appendCheckpoint(CK.bytes()));
    HasCK = true;
    Note();
    ASSERT_TRUE(J->appendEvent(3, "gamma"));
    ++Events;
    Note();
    ASSERT_TRUE(J->appendCheckpoint(CK.bytes()));
    Note();
    ASSERT_TRUE(J->appendEvent(4, "delta"));
    ++Events;
    Note();
  }
  std::vector<uint8_t> Full = readAll(Path);
  ASSERT_EQ(Full.size(), Marks.back().Bytes);
  ASSERT_GE(Marks.back().Events, 3u);

  for (size_t Cut = 0; Cut <= Full.size(); ++Cut) {
    std::vector<uint8_t> Prefix(Full.begin(), Full.begin() + Cut);
    writeAll(Path, Prefix);
    JournalRecovery R = recoverJournal(Path, /*TailLimit=*/16);
    ASSERT_TRUE(R.Opened) << "cut " << Cut;

    // The expected state is the last mark at or before the cut.
    Mark Want{0, 0, false};
    for (const Mark &M : Marks)
      if (M.Bytes <= Cut)
        Want = M;
    EXPECT_EQ(R.TotalEvents, Want.Events) << "cut " << Cut;
    EXPECT_EQ(!R.LastCheckpoint.empty(), Want.HasCheckpoint)
        << "cut " << Cut;
    EXPECT_EQ(R.TornBytes, Cut - Want.Bytes) << "cut " << Cut;
    // No corrupt record text ever surfaces.
    for (const JournalEvent &E : R.Tail)
      EXPECT_TRUE(E.Text == "alpha" || E.Text == "beta" ||
                  E.Text == "gamma" || E.Text == "delta")
          << "cut " << Cut << " leaked '" << E.Text << "'";
    // A recovered checkpoint always verifies.
    if (!R.LastCheckpoint.empty()) {
      std::string CkErr;
      EXPECT_TRUE(Checkpoint::fromBytes(R.LastCheckpoint, CkErr).valid())
          << "cut " << Cut << ": " << CkErr;
    }

    // Reopening at this truncation point truncates the torn tail and
    // leaves an appendable journal.
    auto J = Journal::open(Path, Err);
    ASSERT_TRUE(J) << "cut " << Cut << ": " << Err;
    ASSERT_TRUE(J->appendEvent(99, "appended-after-crash"));
    J.reset();
    JournalRecovery After = recoverJournal(Path);
    EXPECT_EQ(After.TornBytes, 0u) << "cut " << Cut;
    EXPECT_EQ(After.TotalEvents, Want.Events + 1) << "cut " << Cut;
    EXPECT_EQ(After.Tail.back().Text, "appended-after-crash")
        << "cut " << Cut;
  }
}

//===----------------------------------------------------------------------===//
// FileSys wrappers
//===----------------------------------------------------------------------===//

TEST(FileSys, CloseReleasesTheStreamEvenOnInjectedError) {
  std::string Path = tempPath("fp_fs_close.bin");
  ScopedFailPoints FP("checkpoint.close=err(EIO)");
  // Exhaust-the-fd-table insurance: if closeFile leaked streams, a few
  // thousand iterations would start failing fopen long before this loop
  // ends.
  for (int I = 0; I < 2048; ++I) {
    std::FILE *F = FileSys::openFile(FailSite::CheckpointOpen, Path.c_str(),
                                     "wb");
    ASSERT_NE(F, nullptr) << "iteration " << I << " (fd leak?)";
    EXPECT_NE(FileSys::closeFile(FailSite::CheckpointClose, F), 0);
  }
}

TEST(FileSys, ShortWritePersistsExactlyTheRequestedBytes) {
  std::string Path = tempPath("fp_fs_short.bin");
  ScopedFailPoints FP("checkpoint.write=short(7)");
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  ASSERT_NE(F, nullptr);
  const char Data[] = "0123456789abcdef";
  size_t W = FileSys::writeFile(FailSite::CheckpointWrite, F, Data, 16);
  EXPECT_LT(W, 16u);
  std::fclose(F);
  EXPECT_EQ(readAll(Path).size(), 7u);
}

TEST(FileSys, TruncateInjection) {
  std::string Path = tempPath("fp_fs_trunc.bin");
  writeAll(Path, {1, 2, 3, 4, 5});
  {
    ScopedFailPoints FP("journal.truncate=err(EIO)");
    EXPECT_NE(FileSys::truncatePath(FailSite::JournalTruncate, Path.c_str(),
                                    2),
              0);
    EXPECT_EQ(readAll(Path).size(), 5u);
  }
  EXPECT_EQ(FileSys::truncatePath(FailSite::JournalTruncate, Path.c_str(), 2),
            0);
  EXPECT_EQ(readAll(Path).size(), 2u);
}

} // namespace
