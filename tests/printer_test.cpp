//===- tests/printer_test.cpp - Printer round-trip tests -------------------===//

#include "syntax/Parser.h"
#include "syntax/Printer.h"

#include <gtest/gtest.h>

using namespace monsem;

namespace {

const Expr *parseOk(AstContext &Ctx, std::string_view Src) {
  DiagnosticSink D;
  const Expr *E = parseProgram(Ctx, Src, D);
  EXPECT_NE(E, nullptr) << "parse failed for: " << Src << "\n" << D.str();
  return E;
}

/// parse(print(parse(Src))) must equal parse(Src).
void roundTrip(std::string_view Src) {
  AstContext C1, C2;
  const Expr *E1 = parseOk(C1, Src);
  if (!E1)
    return;
  std::string Printed = printExpr(E1);
  DiagnosticSink D;
  const Expr *E2 = parseProgram(C2, Printed, D);
  ASSERT_NE(E2, nullptr) << "reparse failed for: " << Printed << "\n"
                         << D.str();
  EXPECT_TRUE(exprEquals(E1, E2))
      << "round-trip mismatch:\n  source:  " << Src
      << "\n  printed: " << Printed << "\n  reprint: " << printExpr(E2);
}

} // namespace

TEST(PrinterTest, Constants) {
  roundTrip("42");
  roundTrip("-17");
  roundTrip("true");
  roundTrip("false");
  roundTrip("[]");
  roundTrip("\"a\\\"b\\n\"");
}

TEST(PrinterTest, OperatorsAndPrecedence) {
  roundTrip("1 + 2 * 3");
  roundTrip("(1 + 2) * 3");
  roundTrip("1 - 2 - 3");
  roundTrip("1 - (2 - 3)");
  roundTrip("1 : 2 : []");
  roundTrip("(1 : []) : []");
  roundTrip("1 + 2 = 3");
  roundTrip("1 < 2");
  roundTrip("x % 2 = 0");
  roundTrip("-x + 1");
  roundTrip("-(x + 1)");
}

TEST(PrinterTest, ApplicationsAndFunctions) {
  roundTrip("f x y");
  roundTrip("f (g x)");
  roundTrip("(lambda x. x) 5");
  roundTrip("lambda x y. x + y");
  roundTrip("f (lambda x. x)");
  roundTrip("f (-3)");
  roundTrip("hd [1, 2]");
  roundTrip("min (f 1) 2");
}

TEST(PrinterTest, ControlForms) {
  roundTrip("if x = 0 then 1 else 2");
  roundTrip("1 + (if b then 1 else 2)");
  roundTrip("letrec f = lambda x. f x in f 1");
  roundTrip("letrec f = lambda x. f x in letrec g = lambda y. g y in f (g 1)");
}

TEST(PrinterTest, Annotations) {
  roundTrip("{A}: 1");
  roundTrip("{fac(x)}: if x = 0 then 1 else x * fac (x - 1)");
  roundTrip("{trace:mul(x, y)}: x * y");
  roundTrip("{outer}: {inner}: 1");
  roundTrip("1 + ({A}: 2)");
}

TEST(PrinterTest, PaperPrograms) {
  roundTrip("letrec mul = lambda x. lambda y. {mul(x, y)}:(x*y) in "
            "letrec fac = lambda x. {fac(x)}:if (x=0) then 1 else "
            "mul x (fac (x-1)) in fac 3");
  roundTrip("letrec inclist = lambda l. lambda acc. if (l=[]) then acc "
            "else inclist (tl l) (((hd l)+1):acc) in "
            "letrec l1 = {l1}:(inclist [1,10,100] []) in l1");
}

TEST(PrinterTest, LambdaCoalescing) {
  AstContext Ctx;
  const Expr *E = parseOk(Ctx, "lambda x. lambda y. x");
  EXPECT_EQ(printExpr(E), "lambda x y. x");
}

TEST(PrinterTest, ListsPrintAsConsChains) {
  AstContext Ctx;
  const Expr *E = parseOk(Ctx, "[1, 2, 3]");
  EXPECT_EQ(printExpr(E), "1 : 2 : 3 : []");
}
