//===- tests/support_test.cpp - Support-library unit tests ----------------===//

#include "support/Arena.h"
#include "support/Diagnostics.h"
#include "support/OutChan.h"
#include "support/StrUtils.h"
#include "support/Symbol.h"

#include <gtest/gtest.h>

using namespace monsem;

TEST(SymbolTest, InternIsIdempotent) {
  Symbol A = Symbol::intern("foo");
  Symbol B = Symbol::intern("foo");
  EXPECT_EQ(A, B);
  EXPECT_EQ(A.id(), B.id());
  EXPECT_EQ(A.str(), "foo");
}

TEST(SymbolTest, DistinctSpellingsDiffer) {
  EXPECT_NE(Symbol::intern("foo"), Symbol::intern("bar"));
  EXPECT_NE(Symbol::intern("foo"), Symbol::intern("fooo"));
}

TEST(SymbolTest, SentinelIsEmpty) {
  Symbol S;
  EXPECT_TRUE(S.empty());
  EXPECT_FALSE(S);
  EXPECT_NE(S, Symbol::intern("x"));
}

TEST(SymbolTest, ManySymbolsKeepStableSpellings) {
  std::vector<Symbol> Syms;
  for (int I = 0; I < 1000; ++I)
    Syms.push_back(Symbol::intern("sym" + std::to_string(I)));
  for (int I = 0; I < 1000; ++I)
    EXPECT_EQ(Syms[I].str(), "sym" + std::to_string(I));
}

TEST(ArenaTest, AllocatesAligned) {
  Arena A;
  for (int I = 0; I < 100; ++I) {
    void *P = A.allocate(I + 1, 8);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % 8, 0u);
  }
}

TEST(ArenaTest, CreateConstructsObjects) {
  Arena A;
  struct Pair {
    int X;
    int Y;
  };
  Pair *P = A.create<Pair>(1, 2);
  EXPECT_EQ(P->X, 1);
  EXPECT_EQ(P->Y, 2);
}

TEST(ArenaTest, GrowsAcrossChunks) {
  Arena A;
  // Force multiple chunk allocations.
  char *First = static_cast<char *>(A.allocate(8, 8));
  *First = 42;
  for (int I = 0; I < 100; ++I)
    A.allocate(4096, 16);
  EXPECT_EQ(*First, 42) << "early allocations must stay valid";
  EXPECT_GT(A.bytesAllocated(), 100u * 4096u);
}

TEST(ArenaTest, ResetReleasesEverything) {
  Arena A;
  A.allocate(1024, 8);
  EXPECT_GT(A.bytesAllocated(), 0u);
  A.reset();
  EXPECT_EQ(A.bytesAllocated(), 0u);
}

TEST(ArenaTest, ResetRetainsAndReusesFirstChunk) {
  Arena A;
  void *First = A.allocate(64, 8);
  A.reset();
  // The retained first chunk is rewound, so the next allocation lands at
  // its start again.
  EXPECT_EQ(A.allocate(64, 8), First);
  EXPECT_EQ(A.bytesAllocated(), 64u);
}

TEST(ArenaTest, ResetAfterGrowthKeepsOnlyFirstChunk) {
  Arena A;
  void *First = A.allocate(64, 8);
  for (int I = 0; I < 100; ++I)
    A.allocate(4096, 16); // Forces additional chunks.
  A.reset();
  EXPECT_EQ(A.bytesAllocated(), 0u);
  EXPECT_EQ(A.allocate(64, 8), First);
  // A reset-and-refill cycle still works past the first chunk.
  for (int I = 0; I < 100; ++I)
    A.allocate(4096, 16);
  EXPECT_GT(A.bytesAllocated(), 100u * 4096u);
}

TEST(DiagnosticsTest, CollectsAndRenders) {
  DiagnosticSink D;
  EXPECT_FALSE(D.hasErrors());
  D.warning({1, 2}, "watch out");
  EXPECT_FALSE(D.hasErrors());
  D.error({3, 4}, "boom");
  EXPECT_TRUE(D.hasErrors());
  EXPECT_NE(D.str().find("error at 3:4: boom"), std::string::npos);
  EXPECT_NE(D.str().find("warning at 1:2: watch out"), std::string::npos);
}

TEST(OutChanTest, LinesAndPending) {
  OutChan C;
  EXPECT_TRUE(C.empty());
  C.addLine("one");
  C.addText("tw");
  C.addText("o");
  C.endLine();
  EXPECT_EQ(C.numLines(), 2u);
  EXPECT_EQ(C.str(), "one\ntwo\n");
  EXPECT_EQ(C.lines()[1], "two");
}

TEST(OutChanTest, PendingPrefixesNextLine) {
  OutChan C;
  C.addText("a");
  C.addLine("b");
  EXPECT_EQ(C.lines()[0], "ab");
}

TEST(StrUtilsTest, SplitTrimJoin) {
  auto Parts = splitString("a,b,,c", ',');
  ASSERT_EQ(Parts.size(), 4u);
  EXPECT_EQ(Parts[2], "");
  EXPECT_EQ(trimString("  hi \n"), "hi");
  EXPECT_EQ(trimString(""), "");
  EXPECT_TRUE(startsWith("foobar", "foo"));
  EXPECT_FALSE(startsWith("fo", "foo"));
  EXPECT_EQ(joinStrings({"a", "b"}, ", "), "a, b");
}
