//===- tests/serve_test.cpp - Session API and `monsem serve` tests ---------===//
//
// Three layers, mirroring the server's own stack:
//
//  * SessionApi.*   — the embedding API in-process: sliced runs on a worker
//                     pool reproduce standalone evaluate() byte-for-byte
//                     (answers, cumulative step counts, probe streams),
//                     including 64 runs multiplexed over 4 workers.
//  * ServeProtocol.* — JSONL golden transcripts through the real binary
//                     over stdin (popen): accept/outcome ordering, error
//                     records, limit caps, capability denials.
//  * ServeDaemon.*  — a bidirectional pipe/fork/exec harness for the parts
//                     popen cannot drive: cancelling a run mid-flight, and
//                     crash-recovery convergence (failpoint-injected crash,
//                     restart on the same journal directory).
//
//===----------------------------------------------------------------------===//

#include "server/Protocol.h"
#include "server/Session.h"

#include "monitors/Profiler.h"
#include "support/FailPoint.h"
#include "support/Journal.h"
#include "syntax/Annotator.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#ifndef MONSEM_CLI_PATH
#error "MONSEM_CLI_PATH must be defined by the build"
#endif

using namespace monsem;

namespace {

std::string facProgram(int N) {
  return "letrec fac = lambda n. if n < 2 then 1 else n * fac (n - 1) "
         "in fac " +
         std::to_string(N);
}

//===----------------------------------------------------------------------===//
// SessionApi — in-process embedding tests
//===----------------------------------------------------------------------===//

struct Baseline {
  std::string Value;
  uint64_t Steps = 0;
  Outcome St = Outcome::Ok;
  std::vector<std::pair<uint64_t, std::string>> Events;
};

/// The ground truth: an uninterrupted, unsliced evaluate() of \p Src under
/// a profile cascade, with every probe event recorded.
Baseline standalone(const std::string &Src, const CallProfiler &Prof) {
  auto P = ParsedProgram::parse(Src);
  EXPECT_TRUE(P->ok()) << P->diags().str();
  AnnotateOptions AO;
  AO.Qualifier = Symbol::intern("profile");
  const Expr *Prog = annotateFunctionBodies(P->context(), P->root(), {}, AO);
  Cascade C;
  C.use(Prof);
  Baseline B;
  EvalMode M = EvalMode(C) &
               eventsInto([&B](uint64_t S, const std::string &T) {
                 B.Events.emplace_back(S, T);
               });
  RunResult R = evaluate(M, Prog);
  B.Value = R.ValueText;
  B.Steps = R.Steps;
  B.St = R.St;
  return B;
}

TEST(SessionApi, SlicedRunMatchesStandalone) {
  CallProfiler Prof;
  Baseline Want = standalone(facProgram(10), Prof);
  ASSERT_EQ(Want.St, Outcome::Ok);

  auto P = ParsedProgram::parse(facProgram(10));
  ASSERT_TRUE(P->ok());
  AnnotateOptions AO;
  AO.Qualifier = Symbol::intern("profile");
  const Expr *Prog = annotateFunctionBodies(P->context(), P->root(), {}, AO);
  Cascade C;
  C.use(Prof);

  // A tiny quantum forces many checkpoint/requeue round trips.
  Session S(Session::Config{2, 32});
  std::vector<std::pair<uint64_t, std::string>> Events;
  uint64_t Checkpoints = 0;
  RunEvents Ev;
  Ev.OnProbe = [&Events](uint64_t Step, const std::string &T) {
    Events.emplace_back(Step, T);
  };
  Ev.OnCheckpoint = [&Checkpoints](uint64_t) { ++Checkpoints; };
  RunResult R = S.submit(EvalMode(C), Prog, std::move(Ev)).outcome();

  EXPECT_EQ(R.St, Outcome::Ok);
  EXPECT_EQ(R.ValueText, Want.Value);
  EXPECT_EQ(R.Steps, Want.Steps);
  EXPECT_EQ(Events, Want.Events); // Byte-for-byte, steps included.
  EXPECT_GT(Checkpoints, 1u);     // The run really was sliced.
}

TEST(SessionApi, SixtyFourRunsOnFourWorkersAreByteIdentical) {
  CallProfiler Prof;
  // Eight distinct programs, each with its own standalone baseline.
  constexpr int Kinds = 8;
  std::vector<Baseline> Want;
  std::vector<std::unique_ptr<ParsedProgram>> Parsed;
  std::vector<const Expr *> Progs;
  for (int K = 0; K < Kinds; ++K) {
    std::string Src = facProgram(6 + K);
    Want.push_back(standalone(Src, Prof));
    auto P = ParsedProgram::parse(Src);
    ASSERT_TRUE(P->ok());
    AnnotateOptions AO;
    AO.Qualifier = Symbol::intern("profile");
    Progs.push_back(
        annotateFunctionBodies(P->context(), P->root(), {}, AO));
    Parsed.push_back(std::move(P));
  }
  Cascade C;
  C.use(Prof);

  constexpr int Runs = 64;
  Session S(Session::Config{4, 64});
  std::vector<std::vector<std::pair<uint64_t, std::string>>> Events(Runs);
  std::vector<RunHandle> Handles;
  for (int I = 0; I < Runs; ++I) {
    auto *Sink = &Events[I];
    RunEvents Ev;
    Ev.OnProbe = [Sink](uint64_t Step, const std::string &T) {
      Sink->emplace_back(Step, T);
    };
    Handles.push_back(
        S.submit(EvalMode(C), Progs[I % Kinds], std::move(Ev)));
  }
  for (int I = 0; I < Runs; ++I) {
    const Baseline &B = Want[I % Kinds];
    RunResult R = Handles[I].outcome();
    EXPECT_EQ(R.St, Outcome::Ok) << "run " << I;
    EXPECT_EQ(R.ValueText, B.Value) << "run " << I;
    EXPECT_EQ(R.Steps, B.Steps) << "run " << I;
    EXPECT_EQ(Events[I], B.Events) << "run " << I;
  }
  EXPECT_EQ(S.liveRuns(), 0u);
}

TEST(SessionApi, CancelFinishesWithCancelledOutcome) {
  auto P = ParsedProgram::parse("letrec loop = lambda n. loop (n + 1) "
                                "in loop 0");
  ASSERT_TRUE(P->ok());
  Session S(Session::Config{2, 256});
  RunHandle H = S.submit(EvalMode(), P->root());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(H.done());
  H.cancel();
  RunResult R = H.outcome();
  EXPECT_EQ(R.St, Outcome::Cancelled);
  EXPECT_GT(R.Steps, 0u); // It really ran before being cancelled.
}

TEST(SessionApi, PauseParksAndResumeContinues) {
  // Long enough (tens of thousands of steps, hundreds of slices) that the
  // pause below always lands while the run is in flight; a pause that
  // arrives after a run finishes is a no-op by design.
  auto P = ParsedProgram::parse("letrec loop = lambda n. if n < 1 then 42 "
                                "else loop (n - 1) in loop 5000");
  ASSERT_TRUE(P->ok());
  // Unmonitored baseline: this test submits the bare program.
  RunResult Base = evaluate(EvalMode(), P->root());
  ASSERT_EQ(Base.St, Outcome::Ok);

  Session S(Session::Config{1, 64});
  RunHandle H = S.submit(EvalMode(), P->root());
  H.pause();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(H.done()); // Parked, not finished.
  EXPECT_EQ(S.liveRuns(), 1u);
  H.resume();
  RunResult R = H.outcome();
  EXPECT_EQ(R.St, Outcome::Ok);
  EXPECT_EQ(R.ValueText, Base.ValueText);
  EXPECT_EQ(R.Steps, Base.Steps); // Park/continue does not skew the count.
}

TEST(SessionApi, DestructorCancelsLiveRuns) {
  auto P = ParsedProgram::parse("letrec loop = lambda n. loop (n + 1) "
                                "in loop 0");
  ASSERT_TRUE(P->ok());
  RunHandle H;
  {
    Session S(Session::Config{2, 128});
    H = S.submit(EvalMode(), P->root());
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  } // ~Session cancels, drains, joins.
  ASSERT_TRUE(H.done());
  EXPECT_EQ(H.outcome().St, Outcome::Cancelled);
}

//===----------------------------------------------------------------------===//
// ServeProtocol — golden transcripts over stdin
//===----------------------------------------------------------------------===//

struct Transcript {
  int ExitCode = -1;
  std::vector<std::string> Lines;
};

/// Feeds \p Requests (JSONL) to `monsem serve <Flags>` over stdin and
/// collects the stdout transcript.
Transcript serveStdin(const std::string &Requests, const std::string &Flags) {
  std::string ReqFile =
      ::testing::TempDir() + "serve_req_" + std::to_string(::getpid()) +
      "_" + std::to_string(::rand()) + ".jsonl";
  {
    FILE *F = fopen(ReqFile.c_str(), "w");
    EXPECT_NE(F, nullptr);
    fwrite(Requests.data(), 1, Requests.size(), F);
    fclose(F);
  }
  std::string Cmd = std::string(MONSEM_CLI_PATH) + " serve " + Flags +
                    " < " + ReqFile + " 2>/dev/null";
  FILE *Pipe = popen(Cmd.c_str(), "r");
  EXPECT_NE(Pipe, nullptr);
  Transcript T;
  std::string Out;
  char Buf[512];
  while (size_t N = fread(Buf, 1, sizeof(Buf), Pipe))
    Out.append(Buf, N);
  T.ExitCode = WEXITSTATUS(pclose(Pipe));
  std::remove(ReqFile.c_str());
  size_t Pos = 0;
  while (Pos < Out.size()) {
    size_t NL = Out.find('\n', Pos);
    if (NL == std::string::npos)
      NL = Out.size();
    T.Lines.push_back(Out.substr(Pos, NL - Pos));
    Pos = NL + 1;
  }
  return T;
}

bool lineHas(const std::string &Line, const std::string &Needle) {
  return Line.find(Needle) != std::string::npos;
}

TEST(ServeProtocol, GoldenSubmitTranscript) {
  Transcript T = serveStdin(
      "{\"op\":\"submit\",\"id\":\"r1\",\"program\":\"" + facProgram(6) +
          "\"}\n",
      "--workers=1 --quantum-steps=0");
  ASSERT_EQ(T.Lines.size(), 3u) << ::testing::PrintToString(T.Lines);
  EXPECT_EQ(T.Lines[0], "{\"event\":\"accepted\",\"id\":\"r1\"}");
  EXPECT_TRUE(lineHas(T.Lines[1], "\"event\":\"outcome\"")) << T.Lines[1];
  EXPECT_TRUE(lineHas(T.Lines[1], "\"id\":\"r1\"")) << T.Lines[1];
  EXPECT_TRUE(lineHas(T.Lines[1], "\"outcome\":\"ok\"")) << T.Lines[1];
  EXPECT_TRUE(lineHas(T.Lines[1], "\"exit_code\":0")) << T.Lines[1];
  EXPECT_TRUE(lineHas(T.Lines[1], "\"value\":\"720\"")) << T.Lines[1];
  EXPECT_TRUE(lineHas(T.Lines[2], "\"event\":\"shutdown\"")) << T.Lines[2];
  EXPECT_TRUE(lineHas(T.Lines[2], "\"done\":1")) << T.Lines[2];
  EXPECT_EQ(T.ExitCode, 0);
}

TEST(ServeProtocol, MalformedLineDoesNotKillTheDaemon) {
  Transcript T = serveStdin(
      "{not json\n"
      "{\"op\":\"submit\",\"id\":\"after\",\"program\":\"1 + 2\"}\n",
      "--workers=1");
  ASSERT_GE(T.Lines.size(), 3u) << ::testing::PrintToString(T.Lines);
  EXPECT_TRUE(lineHas(T.Lines[0], "\"event\":\"error\"")) << T.Lines[0];
  EXPECT_EQ(T.Lines[1], "{\"event\":\"accepted\",\"id\":\"after\"}");
  EXPECT_TRUE(lineHas(T.Lines[2], "\"value\":\"3\"")) << T.Lines[2];
  EXPECT_EQ(T.ExitCode, 0);
}

TEST(ServeProtocol, ParseErrorYieldsErrorRecordNotAcceptance) {
  Transcript T = serveStdin(
      "{\"op\":\"submit\",\"id\":\"bad\",\"program\":\"((\"}\n",
      "--workers=1");
  ASSERT_GE(T.Lines.size(), 1u);
  EXPECT_TRUE(lineHas(T.Lines[0], "\"event\":\"error\"")) << T.Lines[0];
  EXPECT_TRUE(lineHas(T.Lines[0], "\"id\":\"bad\"")) << T.Lines[0];
}

TEST(ServeProtocol, OverLimitRunGetsOutcomeRecordWithExitCode) {
  Transcript T = serveStdin(
      "{\"op\":\"submit\",\"id\":\"lim\",\"program\":\"letrec loop = "
      "lambda n. loop (n + 1) in loop 0\",\"limits\":{\"max_steps\":"
      "500}}\n",
      "--workers=1 --quantum-steps=0");
  ASSERT_GE(T.Lines.size(), 2u) << ::testing::PrintToString(T.Lines);
  EXPECT_TRUE(lineHas(T.Lines[1], "\"outcome\":\"fuel-exhausted\""))
      << T.Lines[1];
  EXPECT_TRUE(lineHas(T.Lines[1], "\"exit_code\":3")) << T.Lines[1];
}

TEST(ServeProtocol, ServerCapOverridesGreedyRequest) {
  // The request asks for a billion steps; the server was started with a
  // 500-step cap. Tighter wins.
  Transcript T = serveStdin(
      "{\"op\":\"submit\",\"id\":\"greedy\",\"program\":\"letrec loop = "
      "lambda n. loop (n + 1) in loop 0\",\"limits\":{\"max_steps\":"
      "1000000000}}\n",
      "--workers=1 --max-steps=500");
  ASSERT_GE(T.Lines.size(), 2u) << ::testing::PrintToString(T.Lines);
  EXPECT_TRUE(lineHas(T.Lines[1], "\"outcome\":\"fuel-exhausted\""))
      << T.Lines[1];
}

TEST(ServeProtocol, CapabilityDenials) {
  Transcript T = serveStdin(
      "{\"op\":\"submit\",\"id\":\"a\",\"program\":\"1\",\"monitors\":"
      "[\"debug\"]}\n"
      "{\"op\":\"submit\",\"id\":\"b\",\"program\":\"1\",\"monitors\":"
      "[\"nosuch\"]}\n"
      "{\"op\":\"submit\",\"id\":\"c\",\"program\":\"1\",\"durable\":"
      "true}\n",
      "--workers=1");
  ASSERT_GE(T.Lines.size(), 3u) << ::testing::PrintToString(T.Lines);
  EXPECT_TRUE(lineHas(T.Lines[0], "interactive")) << T.Lines[0];
  EXPECT_TRUE(lineHas(T.Lines[1], "unknown monitor")) << T.Lines[1];
  EXPECT_TRUE(lineHas(T.Lines[2], "durability not granted")) << T.Lines[2];
}

TEST(ServeProtocol, StatusAndExplicitShutdown) {
  Transcript T = serveStdin("{\"op\":\"status\"}\n{\"op\":\"shutdown\"}\n"
                            "{\"op\":\"status\"}\n",
                            "--workers=3");
  ASSERT_GE(T.Lines.size(), 2u);
  EXPECT_TRUE(lineHas(T.Lines[0], "\"event\":\"status\"")) << T.Lines[0];
  EXPECT_TRUE(lineHas(T.Lines[0], "\"workers\":3")) << T.Lines[0];
  // The request after shutdown is never processed.
  EXPECT_TRUE(lineHas(T.Lines[1], "\"event\":\"shutdown\"")) << T.Lines[1];
  EXPECT_EQ(T.Lines.size(), 2u) << ::testing::PrintToString(T.Lines);
  EXPECT_EQ(T.ExitCode, 0);
}

TEST(ServeProtocol, SixtyFourConcurrentRunsAllAnswer) {
  // Protocol-level smoke of the multiplexing path: 64 governed runs on 4
  // workers, every one gets the right value. (Byte-identity of streams is
  // asserted in-process by SessionApi.SixtyFourRunsOnFourWorkers*.)
  std::string Reqs;
  for (int I = 0; I < 64; ++I)
    Reqs += "{\"op\":\"submit\",\"id\":\"r" + std::to_string(I) +
            "\",\"program\":\"" + facProgram(6 + I % 8) +
            "\",\"limits\":{\"max_steps\":1000000}}\n";
  Transcript T = serveStdin(Reqs, "--workers=4 --quantum-steps=64");
  EXPECT_EQ(T.ExitCode, 0);
  int Outcomes = 0;
  for (const std::string &L : T.Lines)
    if (lineHas(L, "\"outcome\":\"ok\""))
      ++Outcomes;
  EXPECT_EQ(Outcomes, 64) << "lines: " << T.Lines.size();
  // Spot-check one value per program kind.
  bool Sawfac6 = false;
  for (const std::string &L : T.Lines)
    if (lineHas(L, "\"id\":\"r0\"") && lineHas(L, "\"value\":\"720\""))
      Sawfac6 = true;
  EXPECT_TRUE(Sawfac6);
}

//===----------------------------------------------------------------------===//
// ServeDaemon — bidirectional harness (cancel mid-run, crash recovery)
//===----------------------------------------------------------------------===//

struct ServeProc {
  pid_t Pid = -1;
  int InFd = -1, OutFd = -1;
  std::string Buf;

  bool start(const std::vector<std::string> &ExtraArgs,
             const char *FailPoints = nullptr) {
    int In[2], Out[2];
    if (pipe(In) != 0 || pipe(Out) != 0)
      return false;
    Pid = fork();
    if (Pid < 0)
      return false;
    if (Pid == 0) {
      ::dup2(In[0], 0);
      ::dup2(Out[1], 1);
      ::close(In[0]);
      ::close(In[1]);
      ::close(Out[0]);
      ::close(Out[1]);
      if (FailPoints)
        ::setenv("MONSEM_FAILPOINTS", FailPoints, 1);
      std::vector<std::string> Args = {MONSEM_CLI_PATH, "serve"};
      Args.insert(Args.end(), ExtraArgs.begin(), ExtraArgs.end());
      std::vector<char *> Argv;
      for (std::string &A : Args)
        Argv.push_back(A.data());
      Argv.push_back(nullptr);
      ::execv(MONSEM_CLI_PATH, Argv.data());
      _exit(127);
    }
    ::close(In[0]);
    ::close(Out[1]);
    InFd = In[1];
    OutFd = Out[0];
    return true;
  }

  bool send(const std::string &Line) {
    std::string L = Line + "\n";
    return ::write(InFd, L.data(), L.size()) ==
           static_cast<ssize_t>(L.size());
  }

  void closeIn() {
    if (InFd >= 0) {
      ::close(InFd);
      InFd = -1;
    }
  }

  bool readLine(std::string &OutLine, int TimeoutMs = 20000) {
    auto Deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(TimeoutMs);
    for (;;) {
      size_t NL = Buf.find('\n');
      if (NL != std::string::npos) {
        OutLine = Buf.substr(0, NL);
        Buf.erase(0, NL + 1);
        return true;
      }
      auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
                      Deadline - std::chrono::steady_clock::now())
                      .count();
      if (Left <= 0)
        return false;
      struct pollfd P = {OutFd, POLLIN, 0};
      int N = ::poll(&P, 1, static_cast<int>(Left));
      if (N <= 0)
        return false;
      char Chunk[1024];
      ssize_t R = ::read(OutFd, Chunk, sizeof(Chunk));
      if (R <= 0)
        return false; // EOF before a full line.
      Buf.append(Chunk, static_cast<size_t>(R));
    }
  }

  /// Reads lines until one contains \p Needle; collects everything read
  /// into \p Seen when given.
  bool readUntil(const std::string &Needle, std::string *Hit = nullptr,
                 std::vector<std::string> *Seen = nullptr) {
    std::string L;
    while (readLine(L)) {
      if (Seen)
        Seen->push_back(L);
      if (L.find(Needle) != std::string::npos) {
        if (Hit)
          *Hit = L;
        return true;
      }
    }
    return false;
  }

  int wait() {
    closeIn();
    int St = 0;
    ::waitpid(Pid, &St, 0);
    Pid = -1;
    return St;
  }

  ~ServeProc() {
    if (Pid > 0) {
      ::kill(Pid, SIGKILL);
      int St;
      ::waitpid(Pid, &St, 0);
    }
    closeIn();
    if (OutFd >= 0)
      ::close(OutFd);
  }
};

TEST(ServeDaemon, CancelMidRunYieldsCancelledOutcome) {
  ServeProc P;
  ASSERT_TRUE(P.start({"--workers=2", "--quantum-steps=1024"}));
  ASSERT_TRUE(P.send("{\"op\":\"submit\",\"id\":\"spin\",\"program\":"
                     "\"letrec loop = lambda n. loop (n + 1) in loop 0\"}"));
  ASSERT_TRUE(P.readUntil("\"event\":\"accepted\""));
  // Let it spin a little, then cancel.
  ASSERT_TRUE(P.readUntil("\"event\":\"checkpoint\""));
  ASSERT_TRUE(P.send("{\"op\":\"cancel\",\"id\":\"spin\"}"));
  std::string Outcome;
  ASSERT_TRUE(P.readUntil("\"event\":\"outcome\"", &Outcome));
  EXPECT_TRUE(Outcome.find("\"outcome\":\"cancelled\"") != std::string::npos)
      << Outcome;
  EXPECT_TRUE(Outcome.find("\"exit_code\":6") != std::string::npos)
      << Outcome;
  int St = P.wait();
  EXPECT_TRUE(WIFEXITED(St) && WEXITSTATUS(St) == 0);
}

TEST(ServeDaemon, StatusReportsPerfCounters) {
  ServeProc P;
  ASSERT_TRUE(P.start({"--workers=1"}));
  // A fresh daemon has no scheduler occupancy and no completed steps.
  ASSERT_TRUE(P.send("{\"op\":\"status\"}"));
  std::string S0;
  ASSERT_TRUE(P.readUntil("\"event\":\"status\"", &S0));
  EXPECT_TRUE(S0.find("\"active\":0") != std::string::npos) << S0;
  EXPECT_TRUE(S0.find("\"queued\":0") != std::string::npos) << S0;
  EXPECT_TRUE(S0.find("\"user_steps\":0") != std::string::npos) << S0;
  EXPECT_TRUE(S0.find("\"steps_per_sec\":") != std::string::npos) << S0;
  // UserSteps is credited before the outcome event is emitted, so a
  // status issued after the outcome must account the finished run.
  ASSERT_TRUE(P.send("{\"op\":\"submit\",\"id\":\"f\",\"program\":\"" +
                     facProgram(10) + "\"}"));
  std::string Outcome;
  ASSERT_TRUE(P.readUntil("\"event\":\"outcome\"", &Outcome));
  EXPECT_TRUE(Outcome.find("\"outcome\":\"ok\"") != std::string::npos)
      << Outcome;
  ASSERT_TRUE(P.send("{\"op\":\"status\"}"));
  std::string S1;
  ASSERT_TRUE(P.readUntil("\"event\":\"status\"", &S1));
  EXPECT_TRUE(S1.find("\"active\":0") != std::string::npos) << S1;
  EXPECT_TRUE(S1.find("\"user_steps\":0,") == std::string::npos) << S1;
  P.wait();
}

TEST(ServeDaemon, CancelUnknownRunIsAnError) {
  ServeProc P;
  ASSERT_TRUE(P.start({"--workers=1"}));
  ASSERT_TRUE(P.send("{\"op\":\"cancel\",\"id\":\"ghost\"}"));
  std::string Err;
  ASSERT_TRUE(P.readUntil("\"event\":\"error\"", &Err));
  EXPECT_TRUE(Err.find("no such live run") != std::string::npos) << Err;
  P.wait();
}

/// Crash-recovery convergence: a durable run is killed mid-flight by a
/// failpoint-injected crash in the journal write path (the same
/// deterministic crash PR7's supervisor tests use), the daemon is
/// restarted on the same journal directory, and the recovered run must
/// converge to the standalone answer with the exact cumulative step count.
/// The probe events streamed after recovery must equal the standalone
/// event stream's suffix past the recovery point.
TEST(ServeDaemon, CrashRecoveryConvergesToStandaloneAnswer) {
  CallProfiler Prof;
  Baseline Want = standalone(facProgram(18), Prof);
  ASSERT_EQ(Want.St, Outcome::Ok);

  std::string Dir = ::testing::TempDir() + "serve_crash_" +
                    std::to_string(::getpid());
  std::string Submit =
      "{\"op\":\"submit\",\"id\":\"dur\",\"program\":\"" + facProgram(18) +
      "\",\"monitors\":[\"profile\"],\"durable\":true}";

  // Attempt 1: crash on the 12th journal write — mid-run, after at least
  // one durable checkpoint.
  {
    ServeProc P;
    ASSERT_TRUE(P.start({"--workers=1", "--quantum-steps=64",
                         "--journal=" + Dir},
                        "journal.write=crash@12"));
    ASSERT_TRUE(P.send(Submit));
    ASSERT_TRUE(P.readUntil("\"event\":\"accepted\""));
    P.closeIn();
    int St = 0;
    ::waitpid(P.Pid, &St, 0);
    P.Pid = -1;
    ASSERT_TRUE(WIFEXITED(St) && WEXITSTATUS(St) == kFailPointCrashExit)
        << "crash failpoint did not fire; status " << St;
  }

  // Attempt 2: same journal directory, no failpoints. The persisted
  // request is rediscovered and resumed from the last durable checkpoint.
  {
    ServeProc P;
    ASSERT_TRUE(P.start({"--workers=1", "--quantum-steps=64",
                         "--journal=" + Dir}));
    std::vector<std::string> Seen;
    std::string Rec;
    ASSERT_TRUE(P.readUntil("\"event\":\"recovered\"", &Rec, &Seen));
    json::Value RecV;
    std::string JErr;
    ASSERT_TRUE(json::parse(Rec, RecV, JErr)) << Rec;
    uint64_t RecSteps =
        static_cast<uint64_t>(RecV.field("steps")->intOr(0));
    EXPECT_GT(RecSteps, 0u); // crash@12 lands after the first checkpoint.

    std::string Outcome;
    ASSERT_TRUE(P.readUntil("\"event\":\"outcome\"", &Outcome, &Seen));
    json::Value OutV;
    ASSERT_TRUE(json::parse(Outcome, OutV, JErr)) << Outcome;
    EXPECT_EQ(OutV.field("outcome")->strOr(), "ok") << Outcome;
    EXPECT_EQ(OutV.field("value")->strOr(), Want.Value) << Outcome;
    EXPECT_EQ(static_cast<uint64_t>(OutV.field("steps")->intOr(0)),
              Want.Steps)
        << Outcome;

    // Post-recovery probe stream == standalone stream past RecSteps.
    std::vector<std::pair<uint64_t, std::string>> Streamed;
    for (const std::string &L : Seen) {
      if (L.find("\"event\":\"probes\"") == std::string::npos)
        continue;
      json::Value V;
      ASSERT_TRUE(json::parse(L, V, JErr)) << L;
      for (const json::Value &E : V.field("events")->Elems)
        Streamed.emplace_back(
            static_cast<uint64_t>(E.field("step")->intOr(0)),
            std::string(E.field("text")->strOr()));
    }
    std::vector<std::pair<uint64_t, std::string>> WantSuffix;
    for (const auto &[Step, Text] : Want.Events)
      if (Step > RecSteps)
        WantSuffix.emplace_back(Step, Text);
    EXPECT_EQ(Streamed, WantSuffix);

    int St = P.wait();
    EXPECT_TRUE(WIFEXITED(St) && WEXITSTATUS(St) == 0);
    // The request file was consumed: a third start recovers nothing.
    ServeProc P3;
    ASSERT_TRUE(P3.start({"--workers=1", "--journal=" + Dir}));
    ASSERT_TRUE(P3.send("{\"op\":\"status\"}"));
    std::string Status;
    ASSERT_TRUE(P3.readUntil("\"event\":\"status\"", &Status));
    EXPECT_TRUE(Status.find("\"live\":0") != std::string::npos) << Status;
    P3.wait();
  }
}

} // namespace
