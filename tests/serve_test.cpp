//===- tests/serve_test.cpp - Session API and `monsem serve` tests ---------===//
//
// Three layers, mirroring the server's own stack:
//
//  * SessionApi.*   — the embedding API in-process: sliced runs on a worker
//                     pool reproduce standalone evaluate() byte-for-byte
//                     (answers, cumulative step counts, probe streams),
//                     including 64 runs multiplexed over 4 workers.
//  * ServeProtocol.* — JSONL golden transcripts through the real binary
//                     over stdin (popen): accept/outcome ordering, error
//                     records, limit caps, capability denials.
//  * ServeDaemon.*  — a bidirectional pipe/fork/exec harness for the parts
//                     popen cannot drive: cancelling a run mid-flight, and
//                     crash-recovery convergence (failpoint-injected crash,
//                     restart on the same journal directory).
//  * ServeSocket.*  — real TCP clients against the poll-driven multiplexer:
//                     a 32-client soak with socket.{read,write} failpoints
//                     armed (short I/O must be absorbed byte-identically),
//                     and slow-reader disconnection under a tiny outbox cap.
//
//===----------------------------------------------------------------------===//

#include "server/Protocol.h"
#include "server/Session.h"

#include "monitors/Profiler.h"
#include "support/FailPoint.h"
#include "support/Journal.h"
#include "syntax/Annotator.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <dirent.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#ifndef MONSEM_CLI_PATH
#error "MONSEM_CLI_PATH must be defined by the build"
#endif

using namespace monsem;

namespace {

std::string facProgram(int N) {
  return "letrec fac = lambda n. if n < 2 then 1 else n * fac (n - 1) "
         "in fac " +
         std::to_string(N);
}

//===----------------------------------------------------------------------===//
// SessionApi — in-process embedding tests
//===----------------------------------------------------------------------===//

struct Baseline {
  std::string Value;
  uint64_t Steps = 0;
  Outcome St = Outcome::Ok;
  std::vector<std::pair<uint64_t, std::string>> Events;
  std::vector<std::string> Finals; ///< Monitor final states, cascade order.
};

/// The ground truth: an uninterrupted, unsliced evaluate() of \p Src under
/// a profile cascade, with every probe event recorded.
Baseline standalone(const std::string &Src, const CallProfiler &Prof) {
  auto P = ParsedProgram::parse(Src);
  EXPECT_TRUE(P->ok()) << P->diags().str();
  AnnotateOptions AO;
  AO.Qualifier = Symbol::intern("profile");
  const Expr *Prog = annotateFunctionBodies(P->context(), P->root(), {}, AO);
  Cascade C;
  C.use(Prof);
  Baseline B;
  EvalMode M = EvalMode(C) &
               eventsInto([&B](uint64_t S, const std::string &T) {
                 B.Events.emplace_back(S, T);
               });
  RunResult R = evaluate(M, Prog);
  B.Value = R.ValueText;
  B.Steps = R.Steps;
  B.St = R.St;
  for (const auto &FS : R.FinalStates)
    B.Finals.push_back(FS->str());
  return B;
}

TEST(SessionApi, SlicedRunMatchesStandalone) {
  CallProfiler Prof;
  Baseline Want = standalone(facProgram(10), Prof);
  ASSERT_EQ(Want.St, Outcome::Ok);

  auto P = ParsedProgram::parse(facProgram(10));
  ASSERT_TRUE(P->ok());
  AnnotateOptions AO;
  AO.Qualifier = Symbol::intern("profile");
  const Expr *Prog = annotateFunctionBodies(P->context(), P->root(), {}, AO);
  Cascade C;
  C.use(Prof);

  // A tiny quantum forces many checkpoint/requeue round trips.
  Session S(Session::Config{2, 32});
  std::vector<std::pair<uint64_t, std::string>> Events;
  uint64_t Checkpoints = 0;
  RunEvents Ev;
  Ev.OnProbe = [&Events](uint64_t Step, const std::string &T) {
    Events.emplace_back(Step, T);
  };
  Ev.OnCheckpoint = [&Checkpoints](uint64_t) { ++Checkpoints; };
  RunResult R = S.submit(EvalMode(C), Prog, std::move(Ev)).outcome();

  EXPECT_EQ(R.St, Outcome::Ok);
  EXPECT_EQ(R.ValueText, Want.Value);
  EXPECT_EQ(R.Steps, Want.Steps);
  EXPECT_EQ(Events, Want.Events); // Byte-for-byte, steps included.
  EXPECT_GT(Checkpoints, 1u);     // The run really was sliced.
}

TEST(SessionApi, SixtyFourRunsOnFourWorkersAreByteIdentical) {
  CallProfiler Prof;
  // Eight distinct programs, each with its own standalone baseline.
  constexpr int Kinds = 8;
  std::vector<Baseline> Want;
  std::vector<std::unique_ptr<ParsedProgram>> Parsed;
  std::vector<const Expr *> Progs;
  for (int K = 0; K < Kinds; ++K) {
    std::string Src = facProgram(6 + K);
    Want.push_back(standalone(Src, Prof));
    auto P = ParsedProgram::parse(Src);
    ASSERT_TRUE(P->ok());
    AnnotateOptions AO;
    AO.Qualifier = Symbol::intern("profile");
    Progs.push_back(
        annotateFunctionBodies(P->context(), P->root(), {}, AO));
    Parsed.push_back(std::move(P));
  }
  Cascade C;
  C.use(Prof);

  constexpr int Runs = 64;
  Session S(Session::Config{4, 64});
  std::vector<std::vector<std::pair<uint64_t, std::string>>> Events(Runs);
  std::vector<RunHandle> Handles;
  for (int I = 0; I < Runs; ++I) {
    auto *Sink = &Events[I];
    RunEvents Ev;
    Ev.OnProbe = [Sink](uint64_t Step, const std::string &T) {
      Sink->emplace_back(Step, T);
    };
    Handles.push_back(
        S.submit(EvalMode(C), Progs[I % Kinds], std::move(Ev)));
  }
  for (int I = 0; I < Runs; ++I) {
    const Baseline &B = Want[I % Kinds];
    RunResult R = Handles[I].outcome();
    EXPECT_EQ(R.St, Outcome::Ok) << "run " << I;
    EXPECT_EQ(R.ValueText, B.Value) << "run " << I;
    EXPECT_EQ(R.Steps, B.Steps) << "run " << I;
    EXPECT_EQ(Events[I], B.Events) << "run " << I;
  }
  EXPECT_EQ(S.liveRuns(), 0u);
}

TEST(SessionApi, CancelFinishesWithCancelledOutcome) {
  auto P = ParsedProgram::parse("letrec loop = lambda n. loop (n + 1) "
                                "in loop 0");
  ASSERT_TRUE(P->ok());
  Session S(Session::Config{2, 256});
  RunHandle H = S.submit(EvalMode(), P->root());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(H.done());
  H.cancel();
  RunResult R = H.outcome();
  EXPECT_EQ(R.St, Outcome::Cancelled);
  EXPECT_GT(R.Steps, 0u); // It really ran before being cancelled.
}

TEST(SessionApi, PauseParksAndResumeContinues) {
  // Long enough (tens of thousands of steps, hundreds of slices) that the
  // pause below always lands while the run is in flight; a pause that
  // arrives after a run finishes is a no-op by design.
  auto P = ParsedProgram::parse("letrec loop = lambda n. if n < 1 then 42 "
                                "else loop (n - 1) in loop 5000");
  ASSERT_TRUE(P->ok());
  // Unmonitored baseline: this test submits the bare program.
  RunResult Base = evaluate(EvalMode(), P->root());
  ASSERT_EQ(Base.St, Outcome::Ok);

  Session S(Session::Config{1, 64});
  RunHandle H = S.submit(EvalMode(), P->root());
  H.pause();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(H.done()); // Parked, not finished.
  EXPECT_EQ(S.liveRuns(), 1u);
  H.resume();
  RunResult R = H.outcome();
  EXPECT_EQ(R.St, Outcome::Ok);
  EXPECT_EQ(R.ValueText, Base.ValueText);
  EXPECT_EQ(R.Steps, Base.Steps); // Park/continue does not skew the count.
}

TEST(SessionApi, DestructorCancelsLiveRuns) {
  auto P = ParsedProgram::parse("letrec loop = lambda n. loop (n + 1) "
                                "in loop 0");
  ASSERT_TRUE(P->ok());
  RunHandle H;
  {
    Session S(Session::Config{2, 128});
    H = S.submit(EvalMode(), P->root());
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  } // ~Session cancels, drains, joins.
  ASSERT_TRUE(H.done());
  EXPECT_EQ(H.outcome().St, Outcome::Cancelled);
}

TEST(SessionApi, FairShareLetsASmallTenantThroughAConvoy) {
  // Tenant "a" floods the single worker with six long runs, then tenant
  // "b" submits one short run. Deficit round robin grants "b" a quantum
  // every rotation, so its run finishes first — under the old single
  // FIFO it would have finished last, behind ~500 slices of "a".
  auto Long = ParsedProgram::parse("letrec loop = lambda n. if n < 1 then "
                                   "0 else loop (n - 1) in loop 2000");
  ASSERT_TRUE(Long->ok());
  auto Short = ParsedProgram::parse(facProgram(6));
  ASSERT_TRUE(Short->ok());

  Session::Config Cfg;
  Cfg.Workers = 1;
  Cfg.QuantumSteps = 64;
  Session S(Cfg);

  std::mutex OM;
  std::vector<std::string> FinishOrder;
  auto Finisher = [&](std::string Tag) {
    RunEvents Ev;
    Ev.OnFinish = [&, Tag](const RunResult &) {
      std::lock_guard<std::mutex> L(OM);
      FinishOrder.push_back(Tag);
    };
    return Ev;
  };

  std::vector<RunHandle> Handles;
  for (int I = 0; I < 6; ++I)
    Handles.push_back(S.submit(EvalMode(), Long->root(),
                               Finisher("a" + std::to_string(I)), "a"));
  RunHandle B = S.submit(EvalMode(), Short->root(), Finisher("b"), "b");

  RunResult RB = B.outcome();
  EXPECT_EQ(RB.St, Outcome::Ok);
  EXPECT_EQ(RB.ValueText, "720");
  for (RunHandle &H : Handles)
    EXPECT_EQ(H.outcome().St, Outcome::Ok);
  {
    std::lock_guard<std::mutex> L(OM);
    ASSERT_FALSE(FinishOrder.empty());
    EXPECT_EQ(FinishOrder.front(), "b")
        << ::testing::PrintToString(FinishOrder);
  }
  // Per-tenant accounting survived the runs.
  bool SawA = false, SawB = false;
  for (const Session::TenantStats &T : S.tenantStats()) {
    if (T.Tenant == "a") {
      SawA = true;
      EXPECT_EQ(T.Done, 6u);
      EXPECT_GT(T.UserSteps, 0u);
    } else if (T.Tenant == "b") {
      SawB = true;
      EXPECT_EQ(T.Done, 1u);
    }
  }
  EXPECT_TRUE(SawA && SawB);
}

TEST(SessionApi, AdmissionCapsRejectOverCapSubmits) {
  auto P = ParsedProgram::parse("letrec loop = lambda n. loop (n + 1) "
                                "in loop 0");
  ASSERT_TRUE(P->ok());
  Session::Config Cfg;
  Cfg.Workers = 1;
  Cfg.QuantumSteps = 256;
  Cfg.MaxLiveRuns = 2;
  Cfg.MaxLivePerTenant = 1;
  Session S(Cfg);

  std::string Err;
  RunHandle H1 = S.submit(EvalMode(), P->root(), {}, "t1", &Err);
  ASSERT_TRUE(H1.valid()) << Err;
  // Second run for t1: per-tenant cap.
  RunHandle H1b = S.submit(EvalMode(), P->root(), {}, "t1", &Err);
  EXPECT_FALSE(H1b.valid());
  EXPECT_NE(Err.find("tenant"), std::string::npos) << Err;
  EXPECT_FALSE(S.admissible("t1"));
  // A different tenant still fits (2 live total)...
  ASSERT_TRUE(S.admissible("t2", &Err)) << Err;
  RunHandle H2 = S.submit(EvalMode(), P->root(), {}, "t2", &Err);
  ASSERT_TRUE(H2.valid()) << Err;
  // ...but a third hits the global cap.
  EXPECT_FALSE(S.admissible("t3", &Err));
  RunHandle H3 = S.submit(EvalMode(), P->root(), {}, "t3", &Err);
  EXPECT_FALSE(H3.valid());
  // AdmitErr == nullptr bypasses admission (the recovery path).
  RunHandle H4 = S.submit(EvalMode(), P->root(), {}, "t3");
  EXPECT_TRUE(H4.valid());

  for (RunHandle *H : {&H1, &H2, &H4})
    H->cancel();
  EXPECT_EQ(H1.outcome().St, Outcome::Cancelled);
  EXPECT_EQ(H2.outcome().St, Outcome::Cancelled);
  EXPECT_EQ(H4.outcome().St, Outcome::Cancelled);
}

TEST(SessionApi, EvictionUnderMemoryPressureIsByteIdentical) {
  // A one-byte resident cap parks every checkpointed run that is not on a
  // worker, so each of the ~30 slices per run round-trips its checkpoint
  // through a park file. Outcomes must still be byte-identical to
  // standalone — eviction is invisible or it is wrong.
  std::string Dir = ::testing::TempDir() + "serve_park_" +
                    std::to_string(::getpid());
  ASSERT_TRUE(::mkdir(Dir.c_str(), 0700) == 0 || errno == EEXIST);

  CallProfiler Prof;
  constexpr int Kinds = 4;
  std::vector<Baseline> Want;
  std::vector<std::unique_ptr<ParsedProgram>> Parsed;
  std::vector<const Expr *> Progs;
  for (int K = 0; K < Kinds; ++K) {
    std::string Src = facProgram(8 + K);
    Want.push_back(standalone(Src, Prof));
    auto P = ParsedProgram::parse(Src);
    ASSERT_TRUE(P->ok());
    AnnotateOptions AO;
    AO.Qualifier = Symbol::intern("profile");
    Progs.push_back(annotateFunctionBodies(P->context(), P->root(), {}, AO));
    Parsed.push_back(std::move(P));
  }
  Cascade C;
  C.use(Prof);

  Session::Config Cfg;
  Cfg.Workers = 2;
  Cfg.QuantumSteps = 64;
  Cfg.MaxResidentBytes = 1;
  Cfg.ParkDir = Dir;
  constexpr int Runs = 12;
  uint64_t Evicted = 0;
  {
    Session S(Cfg);
    std::vector<std::vector<std::pair<uint64_t, std::string>>> Events(Runs);
    std::vector<RunHandle> Handles;
    for (int I = 0; I < Runs; ++I) {
      auto *Sink = &Events[I];
      RunEvents Ev;
      Ev.OnProbe = [Sink](uint64_t Step, const std::string &T) {
        Sink->emplace_back(Step, T);
      };
      Handles.push_back(
          S.submit(EvalMode(C), Progs[I % Kinds], std::move(Ev)));
    }
    for (int I = 0; I < Runs; ++I) {
      const Baseline &B = Want[I % Kinds];
      RunResult R = Handles[I].outcome();
      EXPECT_EQ(R.St, Outcome::Ok) << "run " << I;
      EXPECT_EQ(R.ValueText, B.Value) << "run " << I;
      EXPECT_EQ(R.Steps, B.Steps) << "run " << I;
      EXPECT_EQ(Events[I], B.Events) << "run " << I;
    }
    Evicted = S.evictions();
    EXPECT_GT(Evicted, 0u); // The cap really did force parking.
    EXPECT_EQ(S.residentBytes(), 0u); // Finished runs release the gauge.
  }
  // Every park file was cleaned up (restored runs unlink on load,
  // finished runs unlink their leftovers).
  DIR *D = ::opendir(Dir.c_str());
  ASSERT_NE(D, nullptr);
  int Leftover = 0;
  while (dirent *E = ::readdir(D))
    if (std::string_view(E->d_name).find(".park") != std::string_view::npos)
      ++Leftover;
  ::closedir(D);
  EXPECT_EQ(Leftover, 0);
  ::rmdir(Dir.c_str());
}

//===----------------------------------------------------------------------===//
// ServeProtocol — golden transcripts over stdin
//===----------------------------------------------------------------------===//

struct Transcript {
  int ExitCode = -1;
  std::vector<std::string> Lines;
};

/// Feeds \p Requests (JSONL) to `monsem serve <Flags>` over stdin and
/// collects the stdout transcript.
Transcript serveStdin(const std::string &Requests, const std::string &Flags) {
  std::string ReqFile =
      ::testing::TempDir() + "serve_req_" + std::to_string(::getpid()) +
      "_" + std::to_string(::rand()) + ".jsonl";
  {
    FILE *F = fopen(ReqFile.c_str(), "w");
    EXPECT_NE(F, nullptr);
    fwrite(Requests.data(), 1, Requests.size(), F);
    fclose(F);
  }
  std::string Cmd = std::string(MONSEM_CLI_PATH) + " serve " + Flags +
                    " < " + ReqFile + " 2>/dev/null";
  FILE *Pipe = popen(Cmd.c_str(), "r");
  EXPECT_NE(Pipe, nullptr);
  Transcript T;
  std::string Out;
  char Buf[512];
  while (size_t N = fread(Buf, 1, sizeof(Buf), Pipe))
    Out.append(Buf, N);
  T.ExitCode = WEXITSTATUS(pclose(Pipe));
  std::remove(ReqFile.c_str());
  size_t Pos = 0;
  while (Pos < Out.size()) {
    size_t NL = Out.find('\n', Pos);
    if (NL == std::string::npos)
      NL = Out.size();
    T.Lines.push_back(Out.substr(Pos, NL - Pos));
    Pos = NL + 1;
  }
  return T;
}

bool lineHas(const std::string &Line, const std::string &Needle) {
  return Line.find(Needle) != std::string::npos;
}

TEST(ServeProtocol, GoldenSubmitTranscript) {
  Transcript T = serveStdin(
      "{\"op\":\"submit\",\"id\":\"r1\",\"program\":\"" + facProgram(6) +
          "\"}\n",
      "--workers=1 --quantum-steps=0");
  ASSERT_EQ(T.Lines.size(), 3u) << ::testing::PrintToString(T.Lines);
  EXPECT_EQ(T.Lines[0], "{\"event\":\"accepted\",\"id\":\"r1\"}");
  EXPECT_TRUE(lineHas(T.Lines[1], "\"event\":\"outcome\"")) << T.Lines[1];
  EXPECT_TRUE(lineHas(T.Lines[1], "\"id\":\"r1\"")) << T.Lines[1];
  EXPECT_TRUE(lineHas(T.Lines[1], "\"outcome\":\"ok\"")) << T.Lines[1];
  EXPECT_TRUE(lineHas(T.Lines[1], "\"exit_code\":0")) << T.Lines[1];
  EXPECT_TRUE(lineHas(T.Lines[1], "\"value\":\"720\"")) << T.Lines[1];
  EXPECT_TRUE(lineHas(T.Lines[2], "\"event\":\"shutdown\"")) << T.Lines[2];
  EXPECT_TRUE(lineHas(T.Lines[2], "\"done\":1")) << T.Lines[2];
  EXPECT_EQ(T.ExitCode, 0);
}

TEST(ServeProtocol, MalformedLineDoesNotKillTheDaemon) {
  Transcript T = serveStdin(
      "{not json\n"
      "{\"op\":\"submit\",\"id\":\"after\",\"program\":\"1 + 2\"}\n",
      "--workers=1");
  ASSERT_GE(T.Lines.size(), 3u) << ::testing::PrintToString(T.Lines);
  EXPECT_TRUE(lineHas(T.Lines[0], "\"event\":\"error\"")) << T.Lines[0];
  EXPECT_EQ(T.Lines[1], "{\"event\":\"accepted\",\"id\":\"after\"}");
  EXPECT_TRUE(lineHas(T.Lines[2], "\"value\":\"3\"")) << T.Lines[2];
  EXPECT_EQ(T.ExitCode, 0);
}

TEST(ServeProtocol, ParseErrorYieldsErrorRecordNotAcceptance) {
  Transcript T = serveStdin(
      "{\"op\":\"submit\",\"id\":\"bad\",\"program\":\"((\"}\n",
      "--workers=1");
  ASSERT_GE(T.Lines.size(), 1u);
  EXPECT_TRUE(lineHas(T.Lines[0], "\"event\":\"error\"")) << T.Lines[0];
  EXPECT_TRUE(lineHas(T.Lines[0], "\"id\":\"bad\"")) << T.Lines[0];
}

TEST(ServeProtocol, OverLimitRunGetsOutcomeRecordWithExitCode) {
  Transcript T = serveStdin(
      "{\"op\":\"submit\",\"id\":\"lim\",\"program\":\"letrec loop = "
      "lambda n. loop (n + 1) in loop 0\",\"limits\":{\"max_steps\":"
      "500}}\n",
      "--workers=1 --quantum-steps=0");
  ASSERT_GE(T.Lines.size(), 2u) << ::testing::PrintToString(T.Lines);
  EXPECT_TRUE(lineHas(T.Lines[1], "\"outcome\":\"fuel-exhausted\""))
      << T.Lines[1];
  EXPECT_TRUE(lineHas(T.Lines[1], "\"exit_code\":3")) << T.Lines[1];
}

TEST(ServeProtocol, ServerCapOverridesGreedyRequest) {
  // The request asks for a billion steps; the server was started with a
  // 500-step cap. Tighter wins.
  Transcript T = serveStdin(
      "{\"op\":\"submit\",\"id\":\"greedy\",\"program\":\"letrec loop = "
      "lambda n. loop (n + 1) in loop 0\",\"limits\":{\"max_steps\":"
      "1000000000}}\n",
      "--workers=1 --max-steps=500");
  ASSERT_GE(T.Lines.size(), 2u) << ::testing::PrintToString(T.Lines);
  EXPECT_TRUE(lineHas(T.Lines[1], "\"outcome\":\"fuel-exhausted\""))
      << T.Lines[1];
}

TEST(ServeProtocol, CapabilityDenials) {
  Transcript T = serveStdin(
      "{\"op\":\"submit\",\"id\":\"a\",\"program\":\"1\",\"monitors\":"
      "[\"debug\"]}\n"
      "{\"op\":\"submit\",\"id\":\"b\",\"program\":\"1\",\"monitors\":"
      "[\"nosuch\"]}\n"
      "{\"op\":\"submit\",\"id\":\"c\",\"program\":\"1\",\"durable\":"
      "true}\n",
      "--workers=1");
  ASSERT_GE(T.Lines.size(), 3u) << ::testing::PrintToString(T.Lines);
  EXPECT_TRUE(lineHas(T.Lines[0], "interactive")) << T.Lines[0];
  EXPECT_TRUE(lineHas(T.Lines[1], "unknown monitor")) << T.Lines[1];
  EXPECT_TRUE(lineHas(T.Lines[2], "durability not granted")) << T.Lines[2];
}

TEST(ServeProtocol, StatusAndExplicitShutdown) {
  Transcript T = serveStdin("{\"op\":\"status\"}\n{\"op\":\"shutdown\"}\n"
                            "{\"op\":\"status\"}\n",
                            "--workers=3");
  ASSERT_GE(T.Lines.size(), 2u);
  EXPECT_TRUE(lineHas(T.Lines[0], "\"event\":\"status\"")) << T.Lines[0];
  EXPECT_TRUE(lineHas(T.Lines[0], "\"workers\":3")) << T.Lines[0];
  // The request after shutdown is never processed.
  EXPECT_TRUE(lineHas(T.Lines[1], "\"event\":\"shutdown\"")) << T.Lines[1];
  EXPECT_EQ(T.Lines.size(), 2u) << ::testing::PrintToString(T.Lines);
  EXPECT_EQ(T.ExitCode, 0);
}

TEST(ServeProtocol, SixtyFourConcurrentRunsAllAnswer) {
  // Protocol-level smoke of the multiplexing path: 64 governed runs on 4
  // workers, every one gets the right value. (Byte-identity of streams is
  // asserted in-process by SessionApi.SixtyFourRunsOnFourWorkers*.)
  std::string Reqs;
  for (int I = 0; I < 64; ++I)
    Reqs += "{\"op\":\"submit\",\"id\":\"r" + std::to_string(I) +
            "\",\"program\":\"" + facProgram(6 + I % 8) +
            "\",\"limits\":{\"max_steps\":1000000}}\n";
  Transcript T = serveStdin(Reqs, "--workers=4 --quantum-steps=64");
  EXPECT_EQ(T.ExitCode, 0);
  int Outcomes = 0;
  for (const std::string &L : T.Lines)
    if (lineHas(L, "\"outcome\":\"ok\""))
      ++Outcomes;
  EXPECT_EQ(Outcomes, 64) << "lines: " << T.Lines.size();
  // Spot-check one value per program kind.
  bool Sawfac6 = false;
  for (const std::string &L : T.Lines)
    if (lineHas(L, "\"id\":\"r0\"") && lineHas(L, "\"value\":\"720\""))
      Sawfac6 = true;
  EXPECT_TRUE(Sawfac6);
}

TEST(ServeProtocol, RequestLineOverTheCapIsRejectedStructurally) {
  // A 16KiB request line against a 4KiB cap: the daemon answers with a
  // structured error record and disconnects that channel instead of
  // buffering without bound — and still exits cleanly.
  std::string Huge = "{\"op\":\"submit\",\"id\":\"big\",\"program\":\"";
  Huge.append(16 * 1024, '1');
  Huge += "\"}\n";
  Transcript T = serveStdin(Huge, "--workers=1 --max-request-bytes=4096");
  ASSERT_GE(T.Lines.size(), 2u) << ::testing::PrintToString(T.Lines);
  EXPECT_TRUE(lineHas(T.Lines[0], "\"event\":\"error\"")) << T.Lines[0];
  EXPECT_TRUE(lineHas(T.Lines[0], "request line exceeds 4096 bytes"))
      << T.Lines[0];
  EXPECT_TRUE(lineHas(T.Lines.back(), "\"event\":\"shutdown\""))
      << T.Lines.back();
  EXPECT_EQ(T.ExitCode, 0);
}

TEST(ServeProtocol, OverCapSubmitGetsOverloadedWithRetryHint) {
  // --max-live-runs=1: the second submit arrives while the first is still
  // burning its 2M-step budget, so admission rejects it with a structured
  // `overloaded` record (and a retry-after hint) rather than queueing.
  Transcript T = serveStdin(
      "{\"op\":\"submit\",\"id\":\"hog\",\"program\":\"letrec loop = "
      "lambda n. loop (n + 1) in loop 0\",\"limits\":{\"max_steps\":"
      "2000000}}\n"
      "{\"op\":\"submit\",\"id\":\"turned-away\",\"program\":\"1\"}\n",
      "--workers=1 --quantum-steps=4096 --max-live-runs=1");
  EXPECT_EQ(T.ExitCode, 0);
  bool SawOverloaded = false, HogFinished = false;
  for (const std::string &L : T.Lines) {
    if (lineHas(L, "\"event\":\"overloaded\"")) {
      SawOverloaded = true;
      EXPECT_TRUE(lineHas(L, "\"id\":\"turned-away\"")) << L;
      EXPECT_TRUE(lineHas(L, "\"tenant\":\"stdio\"")) << L;
      EXPECT_TRUE(lineHas(L, "\"retry_after_ms\":")) << L;
    }
    if (lineHas(L, "\"id\":\"hog\"") && lineHas(L, "\"event\":\"outcome\""))
      HogFinished = true;
  }
  EXPECT_TRUE(SawOverloaded) << ::testing::PrintToString(T.Lines);
  EXPECT_TRUE(HogFinished); // Backpressure never cancels admitted work.
}

TEST(ServeProtocol, StatusCarriesTenantRowsAndResidentGauge) {
  Transcript T2 = serveStdin(
      "{\"op\":\"submit\",\"id\":\"r1\",\"program\":\"" + facProgram(6) +
          "\",\"tenant\":\"alice\"}\n"
          "{\"op\":\"status\"}\n",
      "--workers=1");
  bool SawRow = false;
  for (const std::string &L : T2.Lines)
    if (lineHas(L, "\"event\":\"status\"")) {
      EXPECT_TRUE(lineHas(L, "\"resident_bytes\":")) << L;
      EXPECT_TRUE(lineHas(L, "\"evictions\":")) << L;
      EXPECT_TRUE(lineHas(L, "\"tenants\":[")) << L;
      EXPECT_TRUE(lineHas(L, "\"tenant\":\"alice\"")) << L;
      SawRow = true;
    }
  EXPECT_TRUE(SawRow) << ::testing::PrintToString(T2.Lines);
}

TEST(ServeProtocol, BadTenantIsRejected) {
  Transcript T = serveStdin(
      "{\"op\":\"submit\",\"id\":\"r1\",\"program\":\"1\",\"tenant\":"
      "\"../etc\"}\n",
      "--workers=1");
  ASSERT_GE(T.Lines.size(), 1u);
  EXPECT_TRUE(lineHas(T.Lines[0], "\"event\":\"error\"")) << T.Lines[0];
  EXPECT_TRUE(lineHas(T.Lines[0], "tenant")) << T.Lines[0];
}

//===----------------------------------------------------------------------===//
// ServeDaemon — bidirectional harness (cancel mid-run, crash recovery)
//===----------------------------------------------------------------------===//

struct ServeProc {
  pid_t Pid = -1;
  int InFd = -1, OutFd = -1;
  std::string Buf;

  bool start(const std::vector<std::string> &ExtraArgs,
             const char *FailPoints = nullptr) {
    int In[2], Out[2];
    if (pipe(In) != 0 || pipe(Out) != 0)
      return false;
    Pid = fork();
    if (Pid < 0)
      return false;
    if (Pid == 0) {
      ::dup2(In[0], 0);
      ::dup2(Out[1], 1);
      ::close(In[0]);
      ::close(In[1]);
      ::close(Out[0]);
      ::close(Out[1]);
      if (FailPoints)
        ::setenv("MONSEM_FAILPOINTS", FailPoints, 1);
      std::vector<std::string> Args = {MONSEM_CLI_PATH, "serve"};
      Args.insert(Args.end(), ExtraArgs.begin(), ExtraArgs.end());
      std::vector<char *> Argv;
      for (std::string &A : Args)
        Argv.push_back(A.data());
      Argv.push_back(nullptr);
      ::execv(MONSEM_CLI_PATH, Argv.data());
      _exit(127);
    }
    ::close(In[0]);
    ::close(Out[1]);
    InFd = In[1];
    OutFd = Out[0];
    return true;
  }

  bool send(const std::string &Line) {
    std::string L = Line + "\n";
    return ::write(InFd, L.data(), L.size()) ==
           static_cast<ssize_t>(L.size());
  }

  void closeIn() {
    if (InFd >= 0) {
      ::close(InFd);
      InFd = -1;
    }
  }

  bool readLine(std::string &OutLine, int TimeoutMs = 20000) {
    auto Deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(TimeoutMs);
    for (;;) {
      size_t NL = Buf.find('\n');
      if (NL != std::string::npos) {
        OutLine = Buf.substr(0, NL);
        Buf.erase(0, NL + 1);
        return true;
      }
      auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
                      Deadline - std::chrono::steady_clock::now())
                      .count();
      if (Left <= 0)
        return false;
      struct pollfd P = {OutFd, POLLIN, 0};
      int N = ::poll(&P, 1, static_cast<int>(Left));
      if (N <= 0)
        return false;
      char Chunk[1024];
      ssize_t R = ::read(OutFd, Chunk, sizeof(Chunk));
      if (R <= 0)
        return false; // EOF before a full line.
      Buf.append(Chunk, static_cast<size_t>(R));
    }
  }

  /// Reads lines until one contains \p Needle; collects everything read
  /// into \p Seen when given.
  bool readUntil(const std::string &Needle, std::string *Hit = nullptr,
                 std::vector<std::string> *Seen = nullptr) {
    std::string L;
    while (readLine(L)) {
      if (Seen)
        Seen->push_back(L);
      if (L.find(Needle) != std::string::npos) {
        if (Hit)
          *Hit = L;
        return true;
      }
    }
    return false;
  }

  int wait() {
    closeIn();
    int St = 0;
    ::waitpid(Pid, &St, 0);
    Pid = -1;
    return St;
  }

  ~ServeProc() {
    if (Pid > 0) {
      ::kill(Pid, SIGKILL);
      int St;
      ::waitpid(Pid, &St, 0);
    }
    closeIn();
    if (OutFd >= 0)
      ::close(OutFd);
  }
};

TEST(ServeDaemon, CancelMidRunYieldsCancelledOutcome) {
  ServeProc P;
  ASSERT_TRUE(P.start({"--workers=2", "--quantum-steps=1024"}));
  ASSERT_TRUE(P.send("{\"op\":\"submit\",\"id\":\"spin\",\"program\":"
                     "\"letrec loop = lambda n. loop (n + 1) in loop 0\"}"));
  ASSERT_TRUE(P.readUntil("\"event\":\"accepted\""));
  // Let it spin a little, then cancel.
  ASSERT_TRUE(P.readUntil("\"event\":\"checkpoint\""));
  ASSERT_TRUE(P.send("{\"op\":\"cancel\",\"id\":\"spin\"}"));
  std::string Outcome;
  ASSERT_TRUE(P.readUntil("\"event\":\"outcome\"", &Outcome));
  EXPECT_TRUE(Outcome.find("\"outcome\":\"cancelled\"") != std::string::npos)
      << Outcome;
  EXPECT_TRUE(Outcome.find("\"exit_code\":6") != std::string::npos)
      << Outcome;
  int St = P.wait();
  EXPECT_TRUE(WIFEXITED(St) && WEXITSTATUS(St) == 0);
}

TEST(ServeDaemon, StatusReportsPerfCounters) {
  ServeProc P;
  ASSERT_TRUE(P.start({"--workers=1"}));
  // A fresh daemon has no scheduler occupancy and no completed steps.
  ASSERT_TRUE(P.send("{\"op\":\"status\"}"));
  std::string S0;
  ASSERT_TRUE(P.readUntil("\"event\":\"status\"", &S0));
  EXPECT_TRUE(S0.find("\"active\":0") != std::string::npos) << S0;
  EXPECT_TRUE(S0.find("\"queued\":0") != std::string::npos) << S0;
  EXPECT_TRUE(S0.find("\"user_steps\":0") != std::string::npos) << S0;
  EXPECT_TRUE(S0.find("\"steps_per_sec\":") != std::string::npos) << S0;
  // UserSteps is credited before the outcome event is emitted, so a
  // status issued after the outcome must account the finished run.
  ASSERT_TRUE(P.send("{\"op\":\"submit\",\"id\":\"f\",\"program\":\"" +
                     facProgram(10) + "\"}"));
  std::string Outcome;
  ASSERT_TRUE(P.readUntil("\"event\":\"outcome\"", &Outcome));
  EXPECT_TRUE(Outcome.find("\"outcome\":\"ok\"") != std::string::npos)
      << Outcome;
  // The worker releases its occupancy slot just *after* the outcome
  // callback returns, so a status racing that window can still read
  // active:1; poll until the scheduler settles.
  std::string S1;
  bool Settled = false;
  for (int I = 0; I < 100 && !Settled; ++I) {
    ASSERT_TRUE(P.send("{\"op\":\"status\"}"));
    ASSERT_TRUE(P.readUntil("\"event\":\"status\"", &S1));
    Settled = S1.find("\"active\":0") != std::string::npos;
    if (!Settled)
      usleep(10000);
  }
  EXPECT_TRUE(Settled) << S1;
  EXPECT_TRUE(S1.find("\"user_steps\":0,") == std::string::npos) << S1;
  P.wait();
}

TEST(ServeDaemon, CancelUnknownRunIsAnError) {
  ServeProc P;
  ASSERT_TRUE(P.start({"--workers=1"}));
  ASSERT_TRUE(P.send("{\"op\":\"cancel\",\"id\":\"ghost\"}"));
  std::string Err;
  ASSERT_TRUE(P.readUntil("\"event\":\"error\"", &Err));
  EXPECT_TRUE(Err.find("no such live run") != std::string::npos) << Err;
  P.wait();
}

/// Crash-recovery convergence: a durable run is killed mid-flight by a
/// failpoint-injected crash in the journal write path (the same
/// deterministic crash PR7's supervisor tests use), the daemon is
/// restarted on the same journal directory, and the recovered run must
/// converge to the standalone answer with the exact cumulative step count.
/// The probe events streamed after recovery must equal the standalone
/// event stream's suffix past the recovery point.
TEST(ServeDaemon, CrashRecoveryConvergesToStandaloneAnswer) {
  CallProfiler Prof;
  Baseline Want = standalone(facProgram(18), Prof);
  ASSERT_EQ(Want.St, Outcome::Ok);

  std::string Dir = ::testing::TempDir() + "serve_crash_" +
                    std::to_string(::getpid());
  std::string Submit =
      "{\"op\":\"submit\",\"id\":\"dur\",\"program\":\"" + facProgram(18) +
      "\",\"monitors\":[\"profile\"],\"durable\":true}";

  // Attempt 1: crash on the 12th journal write — mid-run, after at least
  // one durable checkpoint.
  {
    ServeProc P;
    ASSERT_TRUE(P.start({"--workers=1", "--quantum-steps=64",
                         "--journal=" + Dir},
                        "journal.write=crash@12"));
    ASSERT_TRUE(P.send(Submit));
    ASSERT_TRUE(P.readUntil("\"event\":\"accepted\""));
    P.closeIn();
    int St = 0;
    ::waitpid(P.Pid, &St, 0);
    P.Pid = -1;
    ASSERT_TRUE(WIFEXITED(St) && WEXITSTATUS(St) == kFailPointCrashExit)
        << "crash failpoint did not fire; status " << St;
  }

  // Attempt 2: same journal directory, no failpoints. The persisted
  // request is rediscovered and resumed from the last durable checkpoint.
  {
    ServeProc P;
    ASSERT_TRUE(P.start({"--workers=1", "--quantum-steps=64",
                         "--journal=" + Dir}));
    std::vector<std::string> Seen;
    std::string Rec;
    ASSERT_TRUE(P.readUntil("\"event\":\"recovered\"", &Rec, &Seen));
    json::Value RecV;
    std::string JErr;
    ASSERT_TRUE(json::parse(Rec, RecV, JErr)) << Rec;
    uint64_t RecSteps =
        static_cast<uint64_t>(RecV.field("steps")->intOr(0));
    EXPECT_GT(RecSteps, 0u); // crash@12 lands after the first checkpoint.

    std::string Outcome;
    ASSERT_TRUE(P.readUntil("\"event\":\"outcome\"", &Outcome, &Seen));
    json::Value OutV;
    ASSERT_TRUE(json::parse(Outcome, OutV, JErr)) << Outcome;
    EXPECT_EQ(OutV.field("outcome")->strOr(), "ok") << Outcome;
    EXPECT_EQ(OutV.field("value")->strOr(), Want.Value) << Outcome;
    EXPECT_EQ(static_cast<uint64_t>(OutV.field("steps")->intOr(0)),
              Want.Steps)
        << Outcome;

    // Post-recovery probe stream == standalone stream past RecSteps.
    std::vector<std::pair<uint64_t, std::string>> Streamed;
    for (const std::string &L : Seen) {
      if (L.find("\"event\":\"probes\"") == std::string::npos)
        continue;
      json::Value V;
      ASSERT_TRUE(json::parse(L, V, JErr)) << L;
      for (const json::Value &E : V.field("events")->Elems)
        Streamed.emplace_back(
            static_cast<uint64_t>(E.field("step")->intOr(0)),
            std::string(E.field("text")->strOr()));
    }
    std::vector<std::pair<uint64_t, std::string>> WantSuffix;
    for (const auto &[Step, Text] : Want.Events)
      if (Step > RecSteps)
        WantSuffix.emplace_back(Step, Text);
    EXPECT_EQ(Streamed, WantSuffix);

    int St = P.wait();
    EXPECT_TRUE(WIFEXITED(St) && WEXITSTATUS(St) == 0);
    // The request file was consumed: a third start recovers nothing.
    ServeProc P3;
    ASSERT_TRUE(P3.start({"--workers=1", "--journal=" + Dir}));
    ASSERT_TRUE(P3.send("{\"op\":\"status\"}"));
    std::string Status;
    ASSERT_TRUE(P3.readUntil("\"event\":\"status\"", &Status));
    EXPECT_TRUE(Status.find("\"live\":0") != std::string::npos) << Status;
    P3.wait();
  }
}

/// Eviction differential through the real daemon: a one-byte resident cap
/// forces constant park/restore churn in the private spool, yet every
/// outcome must match the standalone evaluate() exactly, and the final
/// status must confess that eviction fired.
TEST(ServeDaemon, EvictionUnderCapMatchesStandalone) {
  CallProfiler Prof;
  constexpr int Kinds = 4;
  std::vector<Baseline> Want;
  for (int K = 0; K < Kinds; ++K)
    Want.push_back(standalone(facProgram(10 + K), Prof));

  ServeProc P;
  ASSERT_TRUE(P.start({"--workers=2", "--quantum-steps=128",
                       "--max-resident-bytes=1"}));
  constexpr int Runs = 12;
  for (int I = 0; I < Runs; ++I)
    ASSERT_TRUE(P.send("{\"op\":\"submit\",\"id\":\"e" + std::to_string(I) +
                       "\",\"program\":\"" + facProgram(10 + I % Kinds) +
                       "\",\"monitors\":[\"profile\"]}"));
  int Outcomes = 0;
  std::string L, JErr;
  while (Outcomes < Runs && P.readLine(L)) {
    if (L.find("\"event\":\"outcome\"") == std::string::npos)
      continue;
    ++Outcomes;
    json::Value V;
    ASSERT_TRUE(json::parse(L, V, JErr)) << L;
    std::string Id(V.field("id")->strOr());
    ASSERT_EQ(Id[0], 'e');
    const Baseline &B = Want[std::stoi(Id.substr(1)) % Kinds];
    EXPECT_EQ(V.field("outcome")->strOr(), "ok") << L;
    EXPECT_EQ(V.field("value")->strOr(), B.Value) << L;
    EXPECT_EQ(static_cast<uint64_t>(V.field("steps")->intOr(0)), B.Steps)
        << L;
  }
  ASSERT_EQ(Outcomes, Runs);
  ASSERT_TRUE(P.send("{\"op\":\"status\"}"));
  std::string Status;
  ASSERT_TRUE(P.readUntil("\"event\":\"status\"", &Status));
  json::Value SV;
  ASSERT_TRUE(json::parse(Status, SV, JErr)) << Status;
  EXPECT_GT(SV.field("evictions")->intOr(0), 0) << Status;
  int St = P.wait();
  EXPECT_TRUE(WIFEXITED(St) && WEXITSTATUS(St) == 0);
}

//===----------------------------------------------------------------------===//
// ServeSocket — real TCP clients against the multiplexer
//===----------------------------------------------------------------------===//

/// A blocking TCP test client speaking the JSONL protocol.
struct TcpClient {
  int Fd = -1;
  std::string Buf;

  bool connectTo(uint16_t Port, int RcvBuf = 0) {
    Fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (Fd < 0)
      return false;
    if (RcvBuf > 0)
      ::setsockopt(Fd, SOL_SOCKET, SO_RCVBUF, &RcvBuf, sizeof(RcvBuf));
    sockaddr_in A{};
    A.sin_family = AF_INET;
    A.sin_port = htons(Port);
    A.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    return ::connect(Fd, reinterpret_cast<sockaddr *>(&A), sizeof(A)) == 0;
  }

  bool send(const std::string &Line) {
    std::string L = Line + "\n";
    size_t Off = 0;
    while (Off < L.size()) {
      ssize_t W = ::write(Fd, L.data() + Off, L.size() - Off);
      if (W < 0) {
        if (errno == EINTR)
          continue;
        return false;
      }
      Off += static_cast<size_t>(W);
    }
    return true;
  }

  void shutdownWrite() { ::shutdown(Fd, SHUT_WR); }

  bool readLine(std::string &Out, int TimeoutMs = 30000) {
    auto Deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(TimeoutMs);
    for (;;) {
      size_t NL = Buf.find('\n');
      if (NL != std::string::npos) {
        Out = Buf.substr(0, NL);
        Buf.erase(0, NL + 1);
        return true;
      }
      auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
                      Deadline - std::chrono::steady_clock::now())
                      .count();
      if (Left <= 0)
        return false;
      struct pollfd PP = {Fd, POLLIN, 0};
      if (::poll(&PP, 1, static_cast<int>(Left)) <= 0)
        return false;
      char Chunk[4096];
      ssize_t R = ::read(Fd, Chunk, sizeof(Chunk));
      if (R <= 0)
        return false; // EOF or reset.
      Buf.append(Chunk, static_cast<size_t>(R));
    }
  }

  /// Reads every remaining line until the server closes the connection.
  /// Returns false if the deadline passes with the connection still open.
  bool drainToEof(std::vector<std::string> &Lines, int TimeoutMs = 60000) {
    auto Deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(TimeoutMs);
    for (;;) {
      size_t NL;
      while ((NL = Buf.find('\n')) != std::string::npos) {
        Lines.push_back(Buf.substr(0, NL));
        Buf.erase(0, NL + 1);
      }
      auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
                      Deadline - std::chrono::steady_clock::now())
                      .count();
      if (Left <= 0)
        return false;
      struct pollfd PP = {Fd, POLLIN, 0};
      if (::poll(&PP, 1, static_cast<int>(Left)) <= 0)
        return false;
      char Chunk[4096];
      ssize_t R = ::read(Fd, Chunk, sizeof(Chunk));
      if (R < 0) {
        if (errno == EINTR)
          continue;
        return true; // A reset counts as closed.
      }
      if (R == 0)
        return true;
      Buf.append(Chunk, static_cast<size_t>(R));
    }
  }

  ~TcpClient() {
    if (Fd >= 0)
      ::close(Fd);
  }
};

/// Starts a TCP daemon and returns its announced port via \p Port.
bool startTcpDaemon(ServeProc &P, const std::vector<std::string> &Args,
                    uint16_t &Port, const char *FailPoints = nullptr) {
  std::vector<std::string> All = {"--listen-tcp=0"};
  All.insert(All.end(), Args.begin(), Args.end());
  if (!P.start(All, FailPoints))
    return false;
  std::string L;
  if (!P.readUntil("\"event\":\"listening\"", &L))
    return false;
  json::Value V;
  std::string JErr;
  if (!json::parse(L, V, JErr) || !V.field("port"))
    return false;
  Port = static_cast<uint16_t>(V.field("port")->intOr(0));
  return Port != 0;
}

/// The tentpole soak: 32 concurrent TCP clients, two governed runs each
/// (64 runs on 4 workers), with socket.read/socket.write short-I/O
/// failpoints armed inside the daemon. Every client must receive its own
/// runs' probe streams, step counts, values and monitor finals
/// byte-identical to a standalone evaluate() — partial reads and writes
/// are the transport's problem, never the semantics'.
TEST(ServeSocket, ThirtyTwoClientSoakIsByteIdenticalUnderSocketFaults) {
  CallProfiler Prof;
  constexpr int Kinds = 8;
  std::vector<Baseline> Want;
  for (int K = 0; K < Kinds; ++K)
    Want.push_back(standalone(facProgram(6 + K), Prof));

  ServeProc P;
  uint16_t Port = 0;
  ASSERT_TRUE(startTcpDaemon(
      P, {"--workers=4", "--quantum-steps=128"}, Port,
      "socket.read=short(3)*500;socket.write=short(7)*500"));

  constexpr int Clients = 32, RunsPerClient = 2;
  struct ClientResult {
    bool Connected = false, Eof = false;
    std::vector<std::string> Lines;
  };
  std::vector<ClientResult> Results(Clients);
  std::vector<std::thread> Threads;
  for (int CI = 0; CI < Clients; ++CI)
    Threads.emplace_back([CI, Port, &Results] {
      ClientResult &R = Results[CI];
      TcpClient C;
      if (!C.connectTo(Port))
        return;
      R.Connected = true;
      for (int J = 0; J < RunsPerClient; ++J) {
        int Kind = (CI * RunsPerClient + J) % Kinds;
        if (!C.send("{\"op\":\"submit\",\"id\":\"s" + std::to_string(CI) +
                    "x" + std::to_string(J) + "\",\"program\":\"" +
                    facProgram(6 + Kind) +
                    "\",\"monitors\":[\"profile\"]}"))
          return;
      }
      // Half-close: done submitting; the server keeps the connection
      // until every response has been delivered, then closes it.
      C.shutdownWrite();
      R.Eof = C.drainToEof(R.Lines);
    });
  for (std::thread &T : Threads)
    T.join();

  for (int CI = 0; CI < Clients; ++CI) {
    const ClientResult &R = Results[CI];
    ASSERT_TRUE(R.Connected) << "client " << CI;
    ASSERT_TRUE(R.Eof) << "client " << CI << " never saw server close";
    for (int J = 0; J < RunsPerClient; ++J) {
      std::string Id = "s" + std::to_string(CI) + "x" + std::to_string(J);
      const Baseline &B = Want[(CI * RunsPerClient + J) % Kinds];
      std::vector<std::pair<uint64_t, std::string>> Streamed;
      bool SawAccept = false, SawOutcome = false;
      for (const std::string &L : R.Lines) {
        json::Value V;
        std::string JErr;
        ASSERT_TRUE(json::parse(L, V, JErr)) << L;
        if (!V.field("id") || V.field("id")->strOr() != Id)
          continue;
        std::string_view Ev = V.field("event")->strOr();
        if (Ev == "accepted") {
          SawAccept = true;
        } else if (Ev == "probes") {
          for (const json::Value &E : V.field("events")->Elems)
            Streamed.emplace_back(
                static_cast<uint64_t>(E.field("step")->intOr(0)),
                std::string(E.field("text")->strOr()));
        } else if (Ev == "outcome") {
          SawOutcome = true;
          EXPECT_EQ(V.field("outcome")->strOr(), "ok") << L;
          EXPECT_EQ(V.field("value")->strOr(), B.Value) << L;
          EXPECT_EQ(static_cast<uint64_t>(V.field("steps")->intOr(0)),
                    B.Steps)
              << L;
          const json::Value *Mons = V.field("monitors");
          ASSERT_NE(Mons, nullptr);
          ASSERT_EQ(Mons->Elems.size(), B.Finals.size());
          for (size_t M = 0; M < B.Finals.size(); ++M)
            EXPECT_EQ(Mons->Elems[M].field("state")->strOr(), B.Finals[M])
                << L;
        }
      }
      EXPECT_TRUE(SawAccept) << Id;
      EXPECT_TRUE(SawOutcome) << Id;
      EXPECT_EQ(Streamed, B.Events) << Id;
    }
  }

  // One more client shuts the daemon down; it gets the shutdown record.
  TcpClient Ctl;
  ASSERT_TRUE(Ctl.connectTo(Port));
  ASSERT_TRUE(Ctl.send("{\"op\":\"shutdown\"}"));
  std::string Bye;
  EXPECT_TRUE(Ctl.readLine(Bye));
  EXPECT_TRUE(Bye.find("\"event\":\"shutdown\"") != std::string::npos)
      << Bye;
  int St = P.wait();
  EXPECT_TRUE(WIFEXITED(St) && WEXITSTATUS(St) == 0);
}

/// A reader that stops draining a probe firehose overflows its bounded
/// outbox and is disconnected; the daemon keeps serving other clients.
TEST(ServeSocket, SlowReaderIsDisconnectedAndDaemonSurvives) {
  ServeProc P;
  uint16_t Port = 0;
  ASSERT_TRUE(startTcpDaemon(
      P,
      {"--workers=1", "--max-outbox-bytes=4096", "--slow-reader-ms=300",
       "--sock-sndbuf-bytes=8192"},
      Port));

  // The slow reader: a tiny receive buffer, a probe-heavy run, no reads.
  TcpClient Slow;
  ASSERT_TRUE(Slow.connectTo(Port, /*RcvBuf=*/4096));
  ASSERT_TRUE(Slow.send(
      "{\"op\":\"submit\",\"id\":\"firehose\",\"program\":\"letrec loop = "
      "lambda n. if n < 1 then 0 else loop (n - 1) in loop 50000\","
      "\"monitors\":[\"profile\"]}"));
  // ~50k probe events ≈ several MB of JSON against a few tens of KB of
  // total absorption (8KiB SO_SNDBUF + 4KiB client SO_RCVBUF + the 4KiB
  // outbox): backpressure surfaces after well under 100KB of probes, so
  // even heavily instrumented builds overflow the outbox, trip the 300ms
  // stall detector and cut the connection inside this window.
  std::this_thread::sleep_for(std::chrono::seconds(3));

  // A healthy client is completely unaffected.
  TcpClient Ok;
  ASSERT_TRUE(Ok.connectTo(Port));
  ASSERT_TRUE(Ok.send("{\"op\":\"submit\",\"id\":\"fine\",\"program\":\"" +
                      facProgram(6) + "\"}"));
  std::string L;
  bool SawValue = false;
  while (Ok.readLine(L, 20000)) {
    if (L.find("\"id\":\"fine\"") != std::string::npos &&
        L.find("\"value\":\"720\"") != std::string::npos) {
      SawValue = true;
      break;
    }
  }
  EXPECT_TRUE(SawValue);

  // The slow reader's connection was severed: draining now ends in EOF or
  // a reset, not in an ever-open stream.
  std::vector<std::string> Dregs;
  EXPECT_TRUE(Slow.drainToEof(Dregs, 10000));

  ASSERT_TRUE(Ok.send("{\"op\":\"shutdown\"}"));
  int St = P.wait();
  EXPECT_TRUE(WIFEXITED(St) && WEXITSTATUS(St) == 0);
}

} // namespace
