//===- tests/checkpoint_test.cpp - Checkpoint/resume soundness -------------===//
//
// Differential resumption soundness: interrupting a run at an arbitrary
// step, checkpointing, and resuming in a "fresh process" (new AstContext,
// regenerated program, fresh monitor states) must produce the same final
// answer, the same cumulative step count, and byte-identical monitor
// state renderings as the uninterrupted run — on the CEK machine and the
// bytecode VM, monitored and unmonitored, strict and lazy.
//
// Plus: save/load round-trips for every toolbox monitor state and a
// 3-deep cascade, and rejection tests for mismatched resumes.
//
//===----------------------------------------------------------------------===//

#include "RandomProgram.h"
#include "compile/VM.h"
#include "interp/Eval.h"
#include "monitors/AllocProfiler.h"
#include "monitors/CallGraph.h"
#include "monitors/Collecting.h"
#include "monitors/CostProfiler.h"
#include "monitors/Coverage.h"
#include "monitors/Debugger.h"
#include "monitors/Demon.h"
#include "monitors/FaultInjector.h"
#include "monitors/FlightRecorder.h"
#include "monitors/Profiler.h"
#include "monitors/Stepper.h"
#include "monitors/Tracer.h"
#include "support/Checkpoint.h"
#include "syntax/Annotator.h"

#include <gtest/gtest.h>

using namespace monsem;
using monsem::testing::genProgram;

namespace {

constexpr uint64_t kBigBudget = 4'000'000;

std::unique_ptr<ParsedProgram> parseOk(std::string_view Src) {
  auto P = ParsedProgram::parse(Src);
  EXPECT_TRUE(P->ok()) << P->diags().str();
  return P;
}

/// Everything the differential comparison looks at.
struct Final {
  Outcome St = Outcome::Error;
  std::string ValueText;
  std::string Error;
  uint64_t Steps = 0;
  std::vector<std::string> States;

  bool operator==(const Final &O) const {
    return St == O.St && ValueText == O.ValueText && Error == O.Error &&
           Steps == O.Steps && States == O.States;
  }
};

Final finalOf(const RunResult &R) {
  Final F;
  F.St = R.St;
  F.ValueText = R.ValueText;
  F.Error = R.Error;
  F.Steps = R.Steps;
  for (const auto &S : R.FinalStates)
    F.States.push_back(S->str());
  return F;
}

std::string describe(const Final &F) {
  std::string Out = std::string(outcomeName(F.St)) + " value='" +
                    F.ValueText + "' error='" + F.Error +
                    "' steps=" + std::to_string(F.Steps);
  for (const std::string &S : F.States)
    Out += " state=" + S;
  return Out;
}

/// The differential core: program #Seed under the given configuration,
/// run uninterrupted vs. interrupted-then-resumed across simulated
/// process boundaries. Returns without checking when the seed does not
/// terminate inside the budget (rare) or finishes too fast to interrupt.
void checkDifferential(unsigned Seed, Backend B, bool Monitored,
                       StrategyTag Strat = kStrict) {
  CallProfiler Prof;
  auto modeFor = [&]() {
    EvalMode M = Strat & BackendTag{B};
    if (Monitored)
      M = M & Prof;
    return M;
  };

  // Reference: uninterrupted.
  AstContext C1;
  const Expr *P1 = genProgram(C1, Seed);
  RunResult Ref = evaluate(modeFor() & maxSteps(kBigBudget), P1);
  if (Ref.stoppedByGovernor())
    return; // Non-terminating seed; nothing to compare against.
  Final FRef = finalOf(Ref);
  if (FRef.Steps < 2)
    return; // Too short to interrupt mid-run.

  // Interrupt at a pseudo-random (but seed-deterministic) step.
  uint64_t K = 1 + (Seed * 7919u) % (FRef.Steps - 1);

  // Interrupted run in its own "process": fresh context, fresh states.
  Checkpoint CK;
  {
    AstContext C2;
    const Expr *P2 = genProgram(C2, Seed);
    RunResult R =
        evaluate(modeFor() & maxSteps(K) &
                     checkpointInto([&](const Checkpoint &C) { CK = C; }),
                 P2);
    ASSERT_EQ(R.St, Outcome::FuelExhausted)
        << "seed " << Seed << " K=" << K << ": " << R.Error;
    ASSERT_TRUE(CK.valid()) << "seed " << Seed;
    if (B == Backend::CEK) { // VM instructions may cost several steps.
      EXPECT_EQ(CK.header().SavedSteps, K) << "seed " << Seed;
    }
    EXPECT_EQ(CK.header().Monitored, Monitored);
  }

  // Resume in a third "process" and compare everything.
  {
    AstContext C3;
    const Expr *P3 = genProgram(C3, Seed);
    RunResult R =
        evaluate(modeFor() & maxSteps(kBigBudget) & resumeFrom(CK), P3);
    Final FRes = finalOf(R);
    EXPECT_TRUE(FRes == FRef)
        << "seed " << Seed << " K=" << K << "\n  reference: "
        << describe(FRef) << "\n  resumed:   " << describe(FRes);
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Differential resumption corpus
//===----------------------------------------------------------------------===//

TEST(CheckpointDifferential, CEKStrictUnmonitored) {
  for (unsigned Seed = 0; Seed < 30; ++Seed)
    checkDifferential(Seed, Backend::CEK, /*Monitored=*/false);
}

TEST(CheckpointDifferential, CEKStrictMonitored) {
  for (unsigned Seed = 0; Seed < 30; ++Seed)
    checkDifferential(Seed, Backend::CEK, /*Monitored=*/true);
}

TEST(CheckpointDifferential, CEKByNeedMonitored) {
  // Lazy resume exercises Thunk serialization (pending and forced) and
  // UpdateThunk continuation frames.
  for (unsigned Seed = 0; Seed < 20; ++Seed)
    checkDifferential(Seed, Backend::CEK, /*Monitored=*/true, kByNeed);
}

TEST(CheckpointDifferential, CEKByNameUnmonitored) {
  for (unsigned Seed = 0; Seed < 15; ++Seed)
    checkDifferential(Seed, Backend::CEK, /*Monitored=*/false, kByName);
}

TEST(CheckpointDifferential, VMUnmonitored) {
  for (unsigned Seed = 0; Seed < 25; ++Seed)
    checkDifferential(Seed, Backend::VM, /*Monitored=*/false);
}

TEST(CheckpointDifferential, VMMonitored) {
  for (unsigned Seed = 0; Seed < 25; ++Seed)
    checkDifferential(Seed, Backend::VM, /*Monitored=*/true);
}

TEST(CheckpointDifferential, ChainedInterrupts) {
  // Interrupt, resume, interrupt again, resume again — the cumulative
  // step counter and the governor's fresh-budget base must compose.
  for (unsigned Seed : {2u, 5u, 9u, 13u, 21u}) {
    CallProfiler Prof;
    AstContext C1;
    RunResult Ref = evaluate(EvalMode(Prof) & maxSteps(kBigBudget),
                             genProgram(C1, Seed));
    if (Ref.stoppedByGovernor())
      continue;
    Final FRef = finalOf(Ref);
    if (FRef.Steps < 4)
      continue;
    uint64_t K1 = (FRef.Steps - 1) / 3, K2 = (FRef.Steps - 1) / 3;
    if (!K1 || !K2)
      continue;

    Checkpoint CK1, CK2;
    {
      AstContext C2;
      RunResult R = evaluate(
          EvalMode(Prof) & maxSteps(K1) &
              checkpointInto([&](const Checkpoint &C) { CK1 = C; }),
          genProgram(C2, Seed));
      ASSERT_EQ(R.St, Outcome::FuelExhausted);
      ASSERT_TRUE(CK1.valid());
      EXPECT_EQ(CK1.header().SavedSteps, K1);
    }
    {
      AstContext C3;
      RunResult R = evaluate(
          EvalMode(Prof) & maxSteps(K2) & resumeFrom(CK1) &
              checkpointInto([&](const Checkpoint &C) { CK2 = C; }),
          genProgram(C3, Seed));
      ASSERT_EQ(R.St, Outcome::FuelExhausted);
      ASSERT_TRUE(CK2.valid());
      // The second leg's fuel is fresh: it ran K2 more steps.
      EXPECT_EQ(CK2.header().SavedSteps, K1 + K2);
    }
    {
      AstContext C4;
      RunResult R = evaluate(EvalMode(Prof) & maxSteps(kBigBudget) &
                                 resumeFrom(CK2),
                             genProgram(C4, Seed));
      Final FRes = finalOf(R);
      EXPECT_TRUE(FRes == FRef)
          << "seed " << Seed << "\n  reference: " << describe(FRef)
          << "\n  resumed:   " << describe(FRes);
    }
  }
}

TEST(CheckpointDifferential, PeriodicCheckpointsAllResumable) {
  CallProfiler Prof;
  auto Src = "letrec loop = lambda k. if k < 1 then ({done}: 42) else "
             "loop (k - 1) in loop 300";
  auto P1 = parseOk(Src);
  std::vector<Checkpoint> CKs;
  RunResult Ref = evaluate(
      EvalMode(Prof) & checkpointEveryNSteps(100) &
          checkpointInto([&](const Checkpoint &C) { CKs.push_back(C); }),
      P1->root());
  ASSERT_TRUE(Ref.Ok) << Ref.Error;
  Final FRef = finalOf(Ref);
  ASSERT_GE(CKs.size(), 2u) << "periodic checkpoints did not fire";
  for (size_t I = 1; I < CKs.size(); ++I)
    EXPECT_GT(CKs[I].header().SavedSteps, CKs[I - 1].header().SavedSteps);

  for (const Checkpoint &CK : CKs) {
    auto P2 = parseOk(Src);
    RunResult R = evaluate(EvalMode(Prof) & resumeFrom(CK), P2->root());
    Final FRes = finalOf(R);
    EXPECT_TRUE(FRes == FRef)
        << "from step " << CK.header().SavedSteps << "\n  reference: "
        << describe(FRef) << "\n  resumed:   " << describe(FRes);
  }
}

//===----------------------------------------------------------------------===//
// Resume rejection: mismatched configurations fail loudly, not subtly
//===----------------------------------------------------------------------===//

namespace {

/// A fuel-interrupted checkpoint of the given mode over \p Src.
Checkpoint interruptedCheckpoint(const EvalMode &Mode, std::string_view Src,
                                 uint64_t K = 50) {
  auto P = parseOk(Src);
  Checkpoint CK;
  EvalMode M = Mode;
  RunResult R = evaluate(
      M & maxSteps(K) & checkpointInto([&](const Checkpoint &C) { CK = C; }),
      P->root());
  EXPECT_EQ(R.St, Outcome::FuelExhausted) << R.Error;
  EXPECT_TRUE(CK.valid());
  return CK;
}

constexpr std::string_view kLoopSrc =
    "letrec loop = lambda k. if k < 1 then 7 else loop (k - 1) in loop 1000";

} // namespace

TEST(CheckpointReject, DifferentProgram) {
  Checkpoint CK = interruptedCheckpoint(EvalMode(), kLoopSrc);
  auto Other = parseOk("letrec loop = lambda k. if k < 1 then 8 else "
                       "loop (k - 1) in loop 1000");
  RunResult R = evaluate(EvalMode() & resumeFrom(CK), Other->root());
  EXPECT_EQ(R.St, Outcome::Error);
  EXPECT_NE(R.Error.find("cannot resume"), std::string::npos) << R.Error;
}

TEST(CheckpointReject, WrongBackend) {
  Checkpoint CK = interruptedCheckpoint(EvalMode(), kLoopSrc);
  auto P = parseOk(kLoopSrc);
  RunResult R = evaluate(EvalMode(kVM) & resumeFrom(CK), P->root());
  EXPECT_EQ(R.St, Outcome::Error);
  EXPECT_NE(R.Error.find("cannot resume"), std::string::npos) << R.Error;
}

TEST(CheckpointReject, MonitoredCheckpointNeedsTheCascade) {
  CallProfiler Prof;
  Checkpoint CK = interruptedCheckpoint(EvalMode(Prof), kLoopSrc);
  auto P = parseOk(kLoopSrc);
  RunResult R = evaluate(EvalMode() & resumeFrom(CK), P->root());
  EXPECT_EQ(R.St, Outcome::Error);
  EXPECT_NE(R.Error.find("cannot resume"), std::string::npos) << R.Error;
}

TEST(CheckpointReject, DifferentMonitorRejected) {
  CallProfiler Prof;
  Checkpoint CK = interruptedCheckpoint(EvalMode(Prof), kLoopSrc);
  auto P = parseOk(kLoopSrc);
  CostProfiler Cost;
  RunResult R = evaluate(EvalMode(Cost) & resumeFrom(CK), P->root());
  EXPECT_EQ(R.St, Outcome::Error);
  EXPECT_NE(R.Error.find("cannot resume"), std::string::npos) << R.Error;
}

TEST(CheckpointReject, DirectBackendRefusesResume) {
  Checkpoint CK = interruptedCheckpoint(EvalMode(), kLoopSrc);
  auto P = parseOk(kLoopSrc);
  RunResult R = evaluate(EvalMode(kDirect) & resumeFrom(CK), P->root());
  EXPECT_EQ(R.St, Outcome::Error);
  EXPECT_NE(R.Error.find("CEK or VM"), std::string::npos) << R.Error;
}

TEST(CheckpointReject, CorruptedBytesRejected) {
  Checkpoint CK = interruptedCheckpoint(EvalMode(), kLoopSrc);
  std::vector<uint8_t> Bytes = CK.bytes();
  Bytes[Bytes.size() / 2] ^= 0xff; // Flip a payload byte.
  std::string Err;
  Checkpoint Bad = Checkpoint::fromBytes(std::move(Bytes), Err);
  EXPECT_FALSE(Bad.valid());
  EXPECT_FALSE(Err.empty());
}

TEST(CheckpointReject, TruncatedBytesRejected) {
  Checkpoint CK = interruptedCheckpoint(EvalMode(), kLoopSrc);
  std::vector<uint8_t> Bytes = CK.bytes();
  Bytes.resize(Bytes.size() / 2);
  std::string Err;
  Checkpoint Bad = Checkpoint::fromBytes(std::move(Bytes), Err);
  EXPECT_FALSE(Bad.valid());
}

TEST(CheckpointFile, SaveLoadRoundTrip) {
  Checkpoint CK = interruptedCheckpoint(EvalMode(), kLoopSrc);
  std::string Path = ::testing::TempDir() + "monsem_ck_roundtrip.bin";
  std::string Err;
  ASSERT_TRUE(CK.saveFile(Path, Err)) << Err;
  Checkpoint Loaded = Checkpoint::loadFile(Path, Err);
  ASSERT_TRUE(Loaded.valid()) << Err;
  EXPECT_EQ(Loaded.bytes(), CK.bytes());
  EXPECT_EQ(Loaded.header().SavedSteps, CK.header().SavedSteps);
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Toolbox monitor save/load round-trips
//===----------------------------------------------------------------------===//

namespace {

/// Serializes \p S, loads the bytes into a fresh state from \p M, and
/// expects the rendering to survive unchanged. Also checks that load
/// consumed exactly the bytes save produced (framing agreement).
void expectStateRoundTrip(const Monitor &M, const MonitorState &S) {
  Serializer Ser;
  S.save(Ser);
  auto Fresh = M.initialState();
  Deserializer D(Ser.bytes());
  Fresh->load(D);
  EXPECT_TRUE(D.ok()) << M.name() << ": " << D.error();
  EXPECT_EQ(D.remaining(), 0u) << M.name() << " left bytes behind";
  EXPECT_EQ(Fresh->str(), S.str()) << M.name();
}

/// Runs \p M over \p Program and round-trips the final state.
void expectRunRoundTrip(const Monitor &M, const Expr *Program) {
  RunResult R = evaluate(EvalMode(M), Program);
  ASSERT_FALSE(R.FinalStates.empty()) << M.name() << ": " << R.Error;
  expectStateRoundTrip(M, *R.FinalStates[0]);
}

} // namespace

TEST(MonitorStateRoundTrip, CountingProfiler) {
  CountingProfiler M;
  auto P = parseOk("({A}: 1) + ({B}: 2) + ({A}: 3)");
  expectRunRoundTrip(M, P->root());
}

TEST(MonitorStateRoundTrip, CallProfiler) {
  CallProfiler M;
  auto P = parseOk("letrec fib = lambda n. {fib}: if n < 2 then n else "
                   "fib (n - 1) + fib (n - 2) in fib 8");
  expectRunRoundTrip(M, P->root());
}

TEST(MonitorStateRoundTrip, Tracer) {
  Tracer M; // No echo stream: lines buffer in the state's channel.
  auto P = parseOk("letrec f = lambda l. {f(l)}: null l in f [1, 2]");
  expectRunRoundTrip(M, P->root());
}

TEST(MonitorStateRoundTrip, TracerMidRunNestingLevel) {
  // Interrupt inside nested traced calls so Level != 0 round-trips too.
  Tracer M;
  auto P = parseOk("letrec f = lambda n. {f(n)}: if n = 0 then 0 else "
                   "f (n - 1) in f 20");
  Checkpoint CK;
  RunResult R = evaluate(
      EvalMode(M) & maxSteps(60) &
          checkpointInto([&](const Checkpoint &C) { CK = C; }),
      P->root());
  ASSERT_EQ(R.St, Outcome::FuelExhausted);
  ASSERT_FALSE(R.FinalStates.empty());
  EXPECT_NE(Tracer::state(*R.FinalStates[0]).Level, 0);
  expectStateRoundTrip(M, *R.FinalStates[0]);
}

TEST(MonitorStateRoundTrip, CostProfiler) {
  CostProfiler M;
  auto P = parseOk("letrec fac = lambda x. {fac}: if x = 0 then 1 else "
                   "x * fac (x - 1) in fac 5");
  expectRunRoundTrip(M, P->root());
}

TEST(MonitorStateRoundTrip, AllocProfiler) {
  AllocProfiler M;
  auto P = parseOk(
      "letrec build = lambda n. if n = 0 then [] else n : build (n - 1) in "
      "letrec big = lambda u. {big}: build 100 in "
      "if null (big 0) then 0 else 1");
  expectRunRoundTrip(M, P->root());
}

TEST(MonitorStateRoundTrip, CallGraph) {
  CallGraphMonitor M;
  auto P = parseOk("letrec mul = lambda x. lambda y. {mul}:(x*y) in "
                   "letrec fac = lambda x. {fac}: if (x=0) then 1 else "
                   "mul x (fac (x-1)) in fac 3");
  expectRunRoundTrip(M, P->root());
}

TEST(MonitorStateRoundTrip, Collecting) {
  CollectingMonitor M;
  auto P = parseOk("letrec f = lambda n. if n = 0 then 0 else "
                   "({v}: n) + f (n - 1) in f 4");
  expectRunRoundTrip(M, P->root());
}

TEST(MonitorStateRoundTrip, Demon) {
  Demon M = Demon::unsortedLists();
  auto P = parseOk("({l}: [1, 2]) = ({l}: [])");
  expectRunRoundTrip(M, P->root());
}

TEST(MonitorStateRoundTrip, Stepper) {
  Stepper M;
  auto P = parseOk("{a}: ({b}: 1) + 2");
  expectRunRoundTrip(M, P->root());
}

TEST(MonitorStateRoundTrip, Coverage) {
  auto P = parseOk("letrec f = lambda n. if n < 0 then f 1 else n in f 5");
  unsigned NumPoints = 0;
  const Expr *Labeled = labelProgramPoints(
      P->context(), P->root(), "p", Symbol::intern("cover"), &NumPoints);
  CoverageMonitor M(NumPoints);
  expectRunRoundTrip(M, Labeled);
}

TEST(MonitorStateRoundTrip, FlightRecorder) {
  FlightRecorder M(4);
  auto P = parseOk("letrec f = lambda n. {f(n)}: if n = 0 then 0 else "
                   "f (n - 1) in f 10");
  expectRunRoundTrip(M, P->root());
}

TEST(MonitorStateRoundTrip, FlightRecorderCapacityTravelsWithTheState) {
  // Capacity is part of the serialized state: restoring into a recorder
  // configured with a different --record-capacity adopts the saved ring
  // unchanged rather than silently truncating history.
  FlightRecorder Big(8), Small(2);
  auto P = parseOk("letrec f = lambda n. {f(n)}: if n = 0 then 0 else "
                   "f (n - 1) in f 10");
  RunResult R = evaluate(EvalMode(Big), P->root());
  ASSERT_FALSE(R.FinalStates.empty());
  Serializer Ser;
  R.FinalStates[0]->save(Ser);
  auto Fresh = Small.initialState();
  Deserializer D(Ser.bytes());
  Fresh->load(D);
  EXPECT_TRUE(D.ok());
  EXPECT_EQ(Fresh->str(), R.FinalStates[0]->str());
}

TEST(MonitorStateRoundTrip, FlightRecorderOverCapacityRejected) {
  // A serialized ring claiming more entries than its own capacity is
  // malformed (can only arise from corruption) and must be refused.
  Serializer Ser;
  Ser.writeU64(2); // Capacity
  Ser.writeU64(5); // TotalEvents
  Ser.writeU32(5); // Ring size > Capacity
  for (int I = 0; I < 5; ++I)
    Ser.writeString("event");
  FlightRecorder M(2);
  auto Fresh = M.initialState();
  Deserializer D(Ser.bytes());
  Fresh->load(D);
  EXPECT_FALSE(D.ok());
}

TEST(MonitorStateRoundTrip, ScriptedDebugger) {
  Debugger M({"step", "step", "print x", "continue"});
  auto P = parseOk("letrec f = lambda x. {f(x)}: if x = 0 then 0 else "
                   "f (x - 1) in f 3");
  expectRunRoundTrip(M, P->root());
}

TEST(MonitorStateRoundTrip, FaultInjectorWrapsInner) {
  // Rate 0: the injector is a pass-through whose state nests the inner
  // profiler's state; the recursive save/load must reach it.
  CallProfiler Inner;
  FaultInjector::Config Cfg;
  Cfg.PerMille = 0;
  FaultInjector M(Inner, Cfg);
  auto P = parseOk("letrec f = lambda n. {f}: if n = 0 then 0 else "
                   "f (n - 1) in f 5");
  expectRunRoundTrip(M, P->root());
}

TEST(MonitorStateRoundTrip, ThreeDeepCascade) {
  // Three monitors with disjoint annotation syntaxes — the tracer claims
  // parameterized `{f(n)}` annotations, the other two are addressed by
  // qualifier — saved and restored through the cascade's monitor section
  // via a real interrupted resume.
  Tracer Trc;        // {f(n)}
  CallProfiler Prof; // {profile:dec}
  CostProfiler Cost; // {cost:body}

  auto Src = "letrec f = lambda n. {f(n)}: if n = 0 then 0 else "
             "({profile:dec}: ({cost:body}: (f (n - 1) + 1))) in f 12";
  auto baseMode = [&]() { return Trc & Prof & Cost; };

  auto P1 = parseOk(Src);
  RunResult Ref = evaluate(baseMode() & maxSteps(kBigBudget), P1->root());
  ASSERT_TRUE(Ref.Ok) << Ref.Error;
  Final FRef = finalOf(Ref);
  ASSERT_EQ(FRef.States.size(), 3u);

  Checkpoint CK;
  {
    auto P2 = parseOk(Src);
    RunResult R = evaluate(
        baseMode() & maxSteps(FRef.Steps / 2) &
            checkpointInto([&](const Checkpoint &C) { CK = C; }),
        P2->root());
    ASSERT_EQ(R.St, Outcome::FuelExhausted);
    ASSERT_TRUE(CK.valid());
  }
  {
    auto P3 = parseOk(Src);
    RunResult R = evaluate(baseMode() & maxSteps(kBigBudget) &
                               resumeFrom(CK),
                           P3->root());
    Final FRes = finalOf(R);
    EXPECT_TRUE(FRes == FRef) << "  reference: " << describe(FRef)
                              << "\n  resumed:   " << describe(FRes);
  }
}

//===----------------------------------------------------------------------===//
// Journal-armed evaluation
//===----------------------------------------------------------------------===//

TEST(CheckpointJournal, EventsAndCheckpointsFlowIntoTheJournal) {
  std::string Path = ::testing::TempDir() + "monsem_ck_journal.bin";
  std::remove(Path.c_str());
  CallProfiler Prof;
  auto Src = "letrec f = lambda n. {f}: if n = 0 then 0 else f (n - 1) "
             "in f 40";
  {
    auto P = parseOk(Src);
    std::string Err;
    auto J = Journal::open(Path, Err);
    ASSERT_NE(J, nullptr) << Err;
    RunResult R = evaluate(Prof & journalInto(*J) &
                               checkpointEveryNSteps(100) & maxSteps(250),
                           P->root());
    ASSERT_EQ(R.St, Outcome::FuelExhausted);
  }
  JournalRecovery Rec = recoverJournal(Path);
  ASSERT_TRUE(Rec.Opened);
  EXPECT_GT(Rec.TotalEvents, 0u);
  ASSERT_FALSE(Rec.LastCheckpoint.empty())
      << "periodic checkpoints should land in the journal";

  // Resume from the journal's last durable checkpoint; same final state
  // as an uninterrupted run.
  std::string Err;
  Checkpoint CK = Checkpoint::fromBytes(Rec.LastCheckpoint, Err);
  ASSERT_TRUE(CK.valid()) << Err;
  auto PRef = parseOk(Src);
  Final FRef = finalOf(evaluate(EvalMode(Prof), PRef->root()));
  auto PRes = parseOk(Src);
  Final FRes = finalOf(evaluate(Prof & resumeFrom(CK), PRes->root()));
  EXPECT_TRUE(FRes == FRef) << "  reference: " << describe(FRef)
                            << "\n  resumed:   " << describe(FRes);
  std::remove(Path.c_str());
}
