//===- tests/extension_test.cpp - Extension monitors & debugger extras -----===//

#include "interp/Eval.h"
#include "compile/VM.h"
#include "monitors/AllocProfiler.h"
#include "monitors/CallGraph.h"
#include "monitors/CostProfiler.h"
#include "monitors/Debugger.h"
#include "monitors/FlightRecorder.h"
#include "monitors/Profiler.h"
#include "syntax/Annotator.h"

#include <gtest/gtest.h>

using namespace monsem;

namespace {

std::unique_ptr<ParsedProgram> parseOk(std::string_view Src) {
  auto P = ParsedProgram::parse(Src);
  EXPECT_TRUE(P->ok()) << P->diags().str();
  return P;
}

RunResult runWith(const Monitor &M, const Expr *E) {
  Cascade C;
  C.use(M);
  return evaluate(C, E);
}

} // namespace

//===----------------------------------------------------------------------===//
// CostProfiler
//===----------------------------------------------------------------------===//

TEST(CostProfilerTest, AccumulatesInclusiveCosts) {
  auto P = parseOk("letrec fac = lambda x. {fac}: if x = 0 then 1 else "
                   "x * fac (x - 1) in fac 5");
  CostProfiler M;
  RunResult R = runWith(M, P->root());
  ASSERT_TRUE(R.Ok) << R.Error;
  const auto &S = CostProfiler::state(*R.FinalStates[0]);
  const auto *E = S.entry("fac");
  ASSERT_NE(E, nullptr);
  EXPECT_EQ(E->Calls, 6u);
  // The outermost call includes all inner ones (inclusive cost), so the
  // maximum is strictly larger than the minimum (the base case).
  EXPECT_GT(E->MaxSteps, E->MinSteps);
  EXPECT_GE(E->TotalSteps, E->MaxSteps);
  EXPECT_TRUE(S.Stack.empty()) << "all probes matched";
}

TEST(CostProfilerTest, DistinguishesCheapAndExpensiveFunctions) {
  auto P = parseOk(
      "letrec cheap = lambda x. {cheap}: x in "
      "letrec pricey = lambda x. {pricey}: "
      "(letrec spin = lambda n. if n = 0 then x else spin (n - 1) "
      "in spin 100) in cheap 1 + pricey 1");
  CostProfiler M;
  RunResult R = runWith(M, P->root());
  ASSERT_TRUE(R.Ok) << R.Error;
  const auto &S = CostProfiler::state(*R.FinalStates[0]);
  ASSERT_NE(S.entry("cheap"), nullptr);
  ASSERT_NE(S.entry("pricey"), nullptr);
  EXPECT_GT(S.entry("pricey")->TotalSteps,
            10 * S.entry("cheap")->TotalSteps);
}

TEST(CostProfilerTest, StateRendering) {
  auto P = parseOk("{f}: 1 + 1");
  CostProfiler M;
  RunResult R = runWith(M, P->root());
  std::string Text = R.FinalStates[0]->str();
  EXPECT_NE(Text.find("f: calls=1"), std::string::npos) << Text;
}

//===----------------------------------------------------------------------===//
// CallGraphMonitor
//===----------------------------------------------------------------------===//

TEST(CallGraphTest, RecordsEdgesWithCounts) {
  auto P = parseOk(
      "letrec mul = lambda x. lambda y. {mul}:(x*y) in "
      "letrec fac = lambda x. {fac}: if (x=0) then 1 else "
      "mul x (fac (x-1)) in fac 3");
  CallGraphMonitor M;
  RunResult R = runWith(M, P->root());
  ASSERT_TRUE(R.Ok) << R.Error;
  const auto &S = CallGraphMonitor::state(*R.FinalStates[0]);
  EXPECT_EQ(S.edge("<root>", "fac"), 1u);
  EXPECT_EQ(S.edge("fac", "fac"), 3u);
  EXPECT_EQ(S.edge("fac", "mul"), 3u);
  EXPECT_EQ(S.edge("mul", "fac"), 0u);
  EXPECT_TRUE(S.Stack.empty());
}

TEST(CallGraphTest, MutualStructureViaHigherOrder) {
  auto P = parseOk(
      "letrec apply = lambda f x. {apply}: f x in "
      "letrec double = lambda x. {double}: x * 2 in "
      "apply double 1 + apply double 2");
  CallGraphMonitor M;
  RunResult R = runWith(M, P->root());
  ASSERT_TRUE(R.Ok) << R.Error;
  const auto &S = CallGraphMonitor::state(*R.FinalStates[0]);
  EXPECT_EQ(S.edge("<root>", "apply"), 2u);
  EXPECT_EQ(S.edge("apply", "double"), 2u);
}

//===----------------------------------------------------------------------===//
// Debugger: conditional breakpoints and watchpoints
//===----------------------------------------------------------------------===//

namespace {

std::vector<std::string> debugFac(std::vector<std::string> Script) {
  auto P = parseOk("letrec fac = lambda x. {fac(x)}: if x = 0 then 1 else "
                   "x * fac (x - 1) in fac 5");
  Debugger Dbg(std::move(Script));
  Cascade C;
  C.use(Dbg);
  RunResult R = evaluate(C, P->root());
  EXPECT_TRUE(R.Ok) << R.Error;
  return Debugger::state(*R.FinalStates[0]).Chan.lines();
}

} // namespace

TEST(DebuggerExtrasTest, ConditionalBreakpoint) {
  auto Lines = debugFac({"breakif fac x 2", "continue", "print x", "quit"});
  // First stop (stepping) at fac(x = 5); then the condition fires at x = 2.
  bool SawCondition = false, SawStop2 = false, SawPrint = false;
  for (const auto &L : Lines) {
    if (L == "condition hit: x = 2")
      SawCondition = true;
    if (L == "stopped at fac(x = 2)")
      SawStop2 = true;
    if (L == "x = 2")
      SawPrint = true;
  }
  EXPECT_TRUE(SawCondition);
  EXPECT_TRUE(SawStop2);
  EXPECT_TRUE(SawPrint);
}

TEST(DebuggerExtrasTest, ConditionalBreakpointSkipsNonMatching) {
  auto Lines = debugFac({"breakif fac x 2", "continue", "quit"});
  unsigned Stops = 0;
  for (const auto &L : Lines)
    if (L.rfind("stopped at", 0) == 0)
      ++Stops;
  EXPECT_EQ(Stops, 2u) << "initial stepping stop + the x=2 stop only";
}

TEST(DebuggerExtrasTest, WatchpointFiresOnChange) {
  auto Lines = debugFac({"watch x", "continue", "continue", "quit"});
  bool SawHit = false;
  for (const auto &L : Lines)
    if (L == "watch hit: x 5 -> 4")
      SawHit = true;
  EXPECT_TRUE(SawHit) << "x changes 5 -> 4 at the second fac event";
}

TEST(DebuggerExtrasTest, DeleteRemovesConditionalBreakpoints) {
  auto Lines =
      debugFac({"breakif fac x 2", "delete fac", "continue"});
  unsigned Stops = 0;
  for (const auto &L : Lines)
    if (L.rfind("stopped at", 0) == 0)
      ++Stops;
  EXPECT_EQ(Stops, 1u);
}

//===----------------------------------------------------------------------===//
// Annotator stacking (multiple monitors, distinct qualifiers)
//===----------------------------------------------------------------------===//

TEST(AnnotatorStackingTest, QualifiedAnnotationsStack) {
  auto P = parseOk("letrec f = lambda x. x in f 1");
  AnnotateOptions TraceOpts;
  TraceOpts.Qualifier = Symbol::intern("trace");
  TraceOpts.WithParams = true;
  AnnotateOptions ProfOpts;
  ProfOpts.Qualifier = Symbol::intern("profile");
  const Expr *A1 = annotateFunctionBodies(P->context(), P->root(), {},
                                          TraceOpts);
  const Expr *A2 = annotateFunctionBodies(P->context(), A1, {}, ProfOpts);
  std::vector<const Annotation *> Anns;
  collectAnnotations(A2, Anns);
  ASSERT_EQ(Anns.size(), 2u);
  // Re-annotating with an already-present qualifier is still idempotent.
  const Expr *A3 = annotateFunctionBodies(P->context(), A2, {}, ProfOpts);
  Anns.clear();
  collectAnnotations(A3, Anns);
  EXPECT_EQ(Anns.size(), 2u);
}

//===----------------------------------------------------------------------===//
// Failure injection: monitors must survive aborted runs
//===----------------------------------------------------------------------===//

TEST(FailureInjectionTest, StatesSurviveRuntimeErrors) {
  auto P = parseOk("letrec f = lambda n. {f}: if n = 0 then hd [] else "
                   "1 + f (n - 1) in f 3");
  CallProfiler Prof;
  Cascade C;
  C.use(Prof);
  RunResult R = evaluate(C, P->root());
  EXPECT_FALSE(R.Ok);
  ASSERT_EQ(R.FinalStates.size(), 1u);
  // All four entries fired their pre before the error surfaced.
  EXPECT_EQ(CallProfiler::state(*R.FinalStates[0]).count("f"), 4u);
}

TEST(FailureInjectionTest, StatesSurviveFuelExhaustion) {
  auto P = parseOk("letrec loop = lambda n. {loop}: loop (n + 1) in loop 0");
  CallProfiler Prof;
  Cascade C;
  C.use(Prof);
  RunResult R = evaluate(C & maxSteps(5000), P->root());
  EXPECT_TRUE(R.FuelExhausted);
  ASSERT_EQ(R.FinalStates.size(), 1u);
  EXPECT_GT(CallProfiler::state(*R.FinalStates[0]).count("loop"), 100u);
}

TEST(FailureInjectionTest, CostProfilerToleratesUnmatchedProbes) {
  // An error aborts evaluation between pre and post; the cost profiler's
  // stack must not confuse later runs (fresh state per run) or crash.
  auto P = parseOk("{f}: (1 / 0)");
  CostProfiler M;
  Cascade C;
  C.use(M);
  RunResult R = evaluate(C, P->root());
  EXPECT_FALSE(R.Ok);
  const auto &S = CostProfiler::state(*R.FinalStates[0]);
  EXPECT_EQ(S.Stack.size(), 1u) << "the aborted probe remains open";
  EXPECT_EQ(S.Entries.count("f"), 0u);
}

//===----------------------------------------------------------------------===//
// FlightRecorder
//===----------------------------------------------------------------------===//

TEST(FlightRecorderTest, KeepsOnlyTheTail) {
  auto P = parseOk("letrec f = lambda n. {f(n)}: if n = 0 then 0 else "
                   "f (n - 1) in f 10");
  FlightRecorder Rec(4);
  Cascade C;
  C.use(Rec);
  RunResult R = evaluate(C, P->root());
  ASSERT_TRUE(R.Ok) << R.Error;
  const auto &S = FlightRecorder::state(*R.FinalStates[0]);
  EXPECT_EQ(S.TotalEvents, 22u); // 11 enters + 11 exits.
  ASSERT_EQ(S.Ring.size(), 4u);
  EXPECT_EQ(S.Ring.back(), "exit f = 0");
}

TEST(FlightRecorderTest, TailSurvivesTheCrash) {
  // The recording shows the events leading up to the failure.
  auto P = parseOk("letrec f = lambda n. {f(n)}: if n = 0 then hd [] else "
                   "1 + f (n - 1) in f 3");
  FlightRecorder Rec(3);
  Cascade C;
  C.use(Rec);
  RunResult R = evaluate(C, P->root());
  EXPECT_FALSE(R.Ok);
  const auto &S = FlightRecorder::state(*R.FinalStates[0]);
  ASSERT_EQ(S.Ring.size(), 3u);
  EXPECT_EQ(S.Ring[0], "enter f (2)");
  EXPECT_EQ(S.Ring[1], "enter f (1)");
  EXPECT_EQ(S.Ring[2], "enter f (0)") << "the last event before the error";
}

//===----------------------------------------------------------------------===//
// AllocProfiler
//===----------------------------------------------------------------------===//

TEST(AllocProfilerTest, MeasuresInclusiveAllocation) {
  // `big` builds a 500-cell list; `small` allocates almost nothing.
  auto P = parseOk(
      "letrec build = lambda n. if n = 0 then [] else n : build (n - 1) in "
      "letrec big = lambda u. {big}: build 500 in "
      "letrec small = lambda u. {small}: u + 1 in "
      "(if null (big 0) then 0 else 1) + small 0");
  AllocProfiler M;
  Cascade C;
  C.use(M);
  RunResult R = evaluate(C, P->root());
  ASSERT_TRUE(R.Ok) << R.Error;
  const auto &S = AllocProfiler::state(*R.FinalStates[0]);
  const auto *Big = S.entry("big");
  const auto *Small = S.entry("small");
  ASSERT_NE(Big, nullptr);
  ASSERT_NE(Small, nullptr);
  EXPECT_GE(Big->TotalBytes, 500u * sizeof(Cell));
  EXPECT_GT(Big->TotalBytes, 10 * Small->TotalBytes);
}

TEST(AllocProfilerTest, WorksOnTheBytecodeVM) {
  auto Q = parseOk(
      "letrec build = lambda n. if n = 0 then [] else n : build (n - 1) in "
      "letrec big = lambda u. {big}: build 100 in null (big 0)");
  AllocProfiler M;
  Cascade C;
  C.use(M);
  RunResult R = evaluateCompiled(C, Q->root());
  ASSERT_TRUE(R.Ok) << R.Error;
  const auto *Big = AllocProfiler::state(*R.FinalStates[0]).entry("big");
  ASSERT_NE(Big, nullptr);
  EXPECT_GE(Big->TotalBytes, 100u * sizeof(Cell));
}

TEST(AllocProfilerTest, SoundnessAndDeterminism) {
  auto P = parseOk("letrec f = lambda n. {f}: if n = 0 then [] else "
                   "n : f (n - 1) in null (f 50)");
  AllocProfiler M;
  Cascade C;
  C.use(M);
  RunResult Std = evaluate(P->root());
  RunResult R1 = evaluate(C, P->root());
  RunResult R2 = evaluate(C, P->root());
  EXPECT_TRUE(R1.sameOutcome(Std));
  EXPECT_EQ(R1.FinalStates[0]->str(), R2.FinalStates[0]->str());
}
