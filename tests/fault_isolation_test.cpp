//===- tests/fault_isolation_test.cpp - Monitor fault boundaries -----------===//
//
// Differential soundness under injected monitor faults: a cascade
// containing a misbehaving monitor (monitors/FaultInjector.h) must still
// produce the standard answer under the Quarantine and RetryThenQuarantine
// policies, on every evaluator (CEK in both environment representations
// and all three strategies, bytecode VM, direct CPS interpreter, and the
// imperative machine), and the monitors that did not fault must end with
// exactly the states of a fault-free monitored run. The Abort policy must
// turn the fault into an ordinary error answer.
//
// This is the quarantine-degenerates-to-G_obl argument (Definition 7.1)
// made executable: skipping a monitor's probes is the oblivious semantics,
// and Theorem 7.7 says the oblivious answer is the standard answer.
//
//===----------------------------------------------------------------------===//

#include "compile/VM.h"
#include "imp/ImpMachine.h"
#include "imp/ImpMonitors.h"
#include "imp/ImpParser.h"
#include "interp/Direct.h"
#include "interp/Eval.h"
#include "monitors/FaultInjector.h"
#include "monitors/Profiler.h"

#include <gtest/gtest.h>

using namespace monsem;

namespace {

std::unique_ptr<ParsedProgram> parseOk(std::string_view Src) {
  auto P = ParsedProgram::parse(Src);
  EXPECT_TRUE(P->ok()) << P->diags().str();
  return P;
}

/// fac 6 with one qualified probe for each of two monitors: the counting
/// profiler (which the injector wraps) and the call profiler (untouched).
const char *FacSrc =
    "letrec fac = lambda x. {count:A}: {profile:fac}: "
    "if x = 0 then 1 else x * fac (x - 1) in fac 6";

FaultInjector::Config throwAlways() {
  FaultInjector::Config C;
  C.M = FaultInjector::Mode::Throw;
  C.PerMille = 1000;
  return C;
}

RunOptions optionsFor(Strategy S, bool Lexical) {
  RunOptions Opts;
  Opts.Strat = S;
  Opts.Lexical = Lexical;
  Opts.MaxSteps = 500000;
  return Opts;
}

/// A monitor whose pre hook throws on its first \p Fails probes, then
/// counts normally — the transient-failure shape RetryThenQuarantine is
/// for.
class FlakyMonitor : public Monitor {
public:
  explicit FlakyMonitor(unsigned Fails) : Fails(Fails) {}

  struct State : MonitorState {
    unsigned Attempts = 0;
    unsigned Counted = 0;
    std::string str() const override { return std::to_string(Counted); }
  };

  std::string_view name() const override { return "flaky"; }
  bool accepts(const Annotation &Ann) const override {
    return !Ann.HasParams;
  }
  std::unique_ptr<MonitorState> initialState() const override {
    return std::make_unique<State>();
  }
  void pre(const MonitorEvent &, MonitorState &S) const override {
    auto &St = static_cast<State &>(S);
    if (St.Attempts++ < Fails)
      throw std::runtime_error("transient flake");
    ++St.Counted;
  }
  void post(const MonitorEvent &, Value, MonitorState &) const override {}

private:
  unsigned Fails;
};

/// An ImpMonitor whose pre hook always throws.
class ThrowingImpMonitor : public ImpMonitor {
public:
  struct State : MonitorState {
    std::string str() const override { return "<throwing>"; }
  };
  std::string_view name() const override { return "boom"; }
  bool accepts(const Annotation &Ann) const override {
    return !Ann.HasParams;
  }
  std::unique_ptr<MonitorState> initialState() const override {
    return std::make_unique<State>();
  }
  void pre(const ImpMonitorEvent &, MonitorState &) const override {
    throw std::runtime_error("imp monitor fault");
  }
  void post(const ImpMonitorEvent &, MonitorState &) const override {}
};

} // namespace

//===----------------------------------------------------------------------===//
// Quarantine: the faulty run still produces the standard answer
//===----------------------------------------------------------------------===//

TEST(FaultIsolationTest, QuarantinePreservesTheAnswerOnEveryMachineVariant) {
  auto P = parseOk(FacSrc);
  CountingProfiler Count;
  CallProfiler Prof;
  FaultInjector Inj(Count, throwAlways());

  for (Strategy S :
       {Strategy::Strict, Strategy::CallByName, Strategy::CallByNeed}) {
    for (bool Lexical : {false, true}) {
      RunOptions Opts = optionsFor(S, Lexical);
      RunResult Std = evaluate(P->root(), Opts);
      ASSERT_TRUE(Std.Ok) << Std.Error;

      EvalMode Mode = StrategyTag{S} & (Lexical ? kLexicalEnv : kNamedEnv) &
                      maxSteps(500000);
      // Fault-free monitored run, for the untouched monitor's state.
      Cascade Clean;
      Clean.use(Count).use(Prof);
      RunResult CleanR = evaluate(Mode & Count & Prof, P->root());
      ASSERT_TRUE(CleanR.Ok) << CleanR.Error;
      ASSERT_TRUE(CleanR.MonitorFaults.empty());

      RunResult Mon = evaluate(Mode & Inj & Prof, P->root());

      EXPECT_TRUE(Mon.sameOutcome(Std))
          << strategyName(S) << " lexical=" << Lexical
          << ": std=" << Std.ValueText
          << " mon=" << (Mon.Ok ? Mon.ValueText : Mon.Error);
      EXPECT_EQ(Mon.IntValue, 720);

      // The injector faulted on its first probe and was quarantined.
      ASSERT_EQ(Mon.MonitorFaults.size(), 1u);
      const MonitorFault &F = Mon.MonitorFaults[0];
      EXPECT_EQ(F.MonitorIndex, 0u);
      EXPECT_EQ(F.MonitorName, "count");
      EXPECT_EQ(F.Site, "{count:A}");
      EXPECT_FALSE(F.InPost);
      EXPECT_TRUE(F.Quarantined);
      EXPECT_NE(F.Message.find("injected fault"), std::string::npos);

      // The untouched monitor saw every one of its probes.
      ASSERT_EQ(Mon.FinalStates.size(), 2u);
      EXPECT_EQ(Mon.FinalStates[1]->str(), CleanR.FinalStates[1]->str());
      EXPECT_EQ(CallProfiler::state(*Mon.FinalStates[1]).count("fac"), 7u);
    }
  }
}

TEST(FaultIsolationTest, QuarantinePreservesTheAnswerOnTheVM) {
  auto P = parseOk(FacSrc);
  CountingProfiler Count;
  CallProfiler Prof;
  FaultInjector Inj(Count, throwAlways());

  RunOptions Opts;
  RunResult Std = evaluate(P->root(), Opts);
  ASSERT_TRUE(Std.Ok) << Std.Error;

  Cascade Clean;
  Clean.use(Count).use(Prof);
  RunResult CleanR = evaluateCompiled(Clean, P->root(), Opts);
  ASSERT_TRUE(CleanR.Ok) << CleanR.Error;

  Cascade Faulty;
  Faulty.use(Inj).use(Prof);
  RunResult Mon = evaluateCompiled(Faulty, P->root(), Opts);
  EXPECT_TRUE(Mon.sameOutcome(Std))
      << "vm: " << (Mon.Ok ? Mon.ValueText : Mon.Error);
  ASSERT_EQ(Mon.MonitorFaults.size(), 1u);
  EXPECT_TRUE(Mon.MonitorFaults[0].Quarantined);
  ASSERT_EQ(Mon.FinalStates.size(), 2u);
  EXPECT_EQ(Mon.FinalStates[1]->str(), CleanR.FinalStates[1]->str());
}

TEST(FaultIsolationTest, QuarantinePreservesTheAnswerOnTheDirectInterpreter) {
  auto P = parseOk(FacSrc);
  CountingProfiler Count;
  CallProfiler Prof;
  FaultInjector Inj(Count, throwAlways());

  RunResult Std = runDirect(P->root());
  ASSERT_TRUE(Std.Ok) << Std.Error;

  Cascade Clean;
  Clean.use(Count).use(Prof);
  RunResult CleanR = runDirect(P->root(), &Clean);
  ASSERT_TRUE(CleanR.Ok) << CleanR.Error;

  Cascade Faulty;
  Faulty.use(Inj).use(Prof);
  DirectOptions Opts;
  RunResult Mon = runDirect(P->root(), &Faulty, Opts);
  EXPECT_TRUE(Mon.sameOutcome(Std))
      << "direct: " << (Mon.Ok ? Mon.ValueText : Mon.Error);
  ASSERT_EQ(Mon.MonitorFaults.size(), 1u);
  EXPECT_EQ(Mon.MonitorFaults[0].MonitorName, "count");
  EXPECT_TRUE(Mon.MonitorFaults[0].Quarantined);
  ASSERT_EQ(Mon.FinalStates.size(), 2u);
  EXPECT_EQ(Mon.FinalStates[1]->str(), CleanR.FinalStates[1]->str());
}

//===----------------------------------------------------------------------===//
// Abort policy
//===----------------------------------------------------------------------===//

TEST(FaultIsolationTest, AbortPolicyTurnsTheFaultIntoAnError) {
  auto P = parseOk(FacSrc);
  CountingProfiler Count;
  CallProfiler Prof;
  FaultInjector Inj(Count, throwAlways());
  Cascade Faulty;
  Faulty.use(Inj).use(Prof);

  RunOptions Opts;
  Opts.MonitorFaultPolicy = FaultPolicy::Abort;
  RunResult R = evaluate(Faulty & onMonitorFault(FaultPolicy::Abort),
                         P->root());
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.St, Outcome::Error);
  EXPECT_NE(R.Error.find("monitor 'count'"), std::string::npos) << R.Error;
  EXPECT_NE(R.Error.find("injected fault"), std::string::npos) << R.Error;
  ASSERT_EQ(R.MonitorFaults.size(), 1u);
  EXPECT_FALSE(R.MonitorFaults[0].Quarantined);

  // Same on the VM.
  RunResult V = evaluateCompiled(Faulty, P->root(), Opts);
  EXPECT_EQ(V.St, Outcome::Error);
  EXPECT_NE(V.Error.find("monitor 'count'"), std::string::npos) << V.Error;

  // Same on the direct interpreter.
  DirectOptions DOpts;
  DOpts.MonitorFaultPolicy = FaultPolicy::Abort;
  RunResult D = runDirect(P->root(), &Faulty, DOpts);
  EXPECT_EQ(D.St, Outcome::Error);
  EXPECT_NE(D.Error.find("monitor 'count'"), std::string::npos) << D.Error;
}

TEST(FaultIsolationTest, PerMonitorPolicyOverridesTheRunWideDefault) {
  auto P = parseOk(FacSrc);
  CountingProfiler Count;
  CallProfiler Prof;
  FaultInjector Inj(Count, throwAlways());

  // Run-wide default stays Quarantine; the injector alone is marked Abort.
  Cascade Faulty;
  Faulty.use(Inj, FaultPolicy::Abort).use(Prof);
  RunResult R = evaluate(EvalMode(Faulty), P->root());
  EXPECT_EQ(R.St, Outcome::Error);
  EXPECT_NE(R.Error.find("monitor 'count'"), std::string::npos) << R.Error;
}

//===----------------------------------------------------------------------===//
// RetryThenQuarantine
//===----------------------------------------------------------------------===//

TEST(FaultIsolationTest, RetrySurvivesTransientFaultsWithoutQuarantine) {
  // Bare annotation: qualified ones would route past the flaky monitor.
  auto P = parseOk("letrec fac = lambda x. {step}: "
                   "if x = 0 then 1 else x * fac (x - 1) in fac 6");
  FlakyMonitor Flaky(/*Fails=*/2);
  Cascade C;
  C.use(Flaky);

  RunResult Std = evaluate(P->root(), RunOptions());
  RunResult R = evaluate(
      C & onMonitorFault(FaultPolicy::RetryThenQuarantine, 3), P->root());
  EXPECT_TRUE(R.sameOutcome(Std)) << (R.Ok ? R.ValueText : R.Error);

  // Two transient faults recorded, neither tripped quarantine, and the
  // hook eventually ran for all 7 probes.
  ASSERT_EQ(R.MonitorFaults.size(), 2u);
  EXPECT_FALSE(R.MonitorFaults[0].Quarantined);
  EXPECT_FALSE(R.MonitorFaults[1].Quarantined);
  ASSERT_EQ(R.FinalStates.size(), 1u);
  EXPECT_EQ(R.FinalStates[0]->str(), "7");
}

TEST(FaultIsolationTest, RetryBudgetExhaustionQuarantines) {
  auto P = parseOk(FacSrc);
  CountingProfiler Count;
  FaultInjector Inj(Count, throwAlways()); // Never stops throwing.
  Cascade C;
  C.use(Inj);

  RunResult Std = evaluate(P->root(), RunOptions());
  RunResult R = evaluate(
      C & onMonitorFault(FaultPolicy::RetryThenQuarantine, 2), P->root());
  EXPECT_TRUE(R.sameOutcome(Std)) << (R.Ok ? R.ValueText : R.Error);

  // Budget 2: two retried faults, then the third quarantines.
  ASSERT_EQ(R.MonitorFaults.size(), 3u);
  EXPECT_FALSE(R.MonitorFaults[0].Quarantined);
  EXPECT_FALSE(R.MonitorFaults[1].Quarantined);
  EXPECT_TRUE(R.MonitorFaults[2].Quarantined);
}

//===----------------------------------------------------------------------===//
// Imperative machine
//===----------------------------------------------------------------------===//

TEST(FaultIsolationTest, ImpCommandMonitorFaultsAreQuarantined) {
  ImpContext Ctx;
  DiagnosticSink Diags;
  const Cmd *Prog = parseImpProgram(
      Ctx, "x := 0; while x < 5 do {tick}: x := x + 1 end; print x", Diags);
  ASSERT_NE(Prog, nullptr) << Diags.str();

  ImpRunResult Std = runImp(Prog);
  ASSERT_TRUE(Std.Ok) << Std.Error;

  ThrowingImpMonitor Boom;
  ImpCascade C;
  C.use(Boom);
  ImpRunResult Mon = runImp(C, Prog);
  EXPECT_TRUE(Mon.sameOutcome(Std))
      << (Mon.Ok ? "ok" : Mon.Error);
  ASSERT_EQ(Mon.MonitorFaults.size(), 1u);
  EXPECT_EQ(Mon.MonitorFaults[0].MonitorName, "boom");
  EXPECT_TRUE(Mon.MonitorFaults[0].Quarantined);

  // Abort policy: the same fault ends the run with an error.
  ImpRunOptions Opts;
  Opts.MonitorFaultPolicy = FaultPolicy::Abort;
  ImpRunResult Ab = runImp(C, Prog, Opts);
  EXPECT_FALSE(Ab.Ok);
  EXPECT_EQ(Ab.St, Outcome::Error);
  EXPECT_NE(Ab.Error.find("monitor 'boom'"), std::string::npos) << Ab.Error;
}

//===----------------------------------------------------------------------===//
// Injector transparency
//===----------------------------------------------------------------------===//

TEST(FaultIsolationTest, InjectorAtRateZeroIsInvisible) {
  auto P = parseOk(FacSrc);
  CountingProfiler Count;
  FaultInjector::Config Cfg = throwAlways();
  Cfg.PerMille = 0; // Never faults: forwards every probe.
  FaultInjector Inj(Count, Cfg);

  Cascade Clean, Wrapped;
  Clean.use(Count);
  Wrapped.use(Inj);
  RunResult A = evaluate(EvalMode(Clean), P->root());
  RunResult B = evaluate(EvalMode(Wrapped), P->root());
  ASSERT_TRUE(A.Ok && B.Ok);
  EXPECT_TRUE(B.MonitorFaults.empty());
  ASSERT_EQ(A.FinalStates.size(), 1u);
  ASSERT_EQ(B.FinalStates.size(), 1u);
  EXPECT_EQ(A.FinalStates[0]->str(), B.FinalStates[0]->str());
}
