//===- tests/cascade_test.cpp - Deep monitor composition (Section 6) -------===//

#include "interp/Direct.h"
#include "interp/Eval.h"
#include "monitors/Collecting.h"
#include "monitors/Coverage.h"
#include "monitors/Demon.h"
#include "monitors/Profiler.h"
#include "monitors/Stepper.h"
#include "monitors/Tracer.h"

#include <gtest/gtest.h>

using namespace monsem;

namespace {

std::unique_ptr<ParsedProgram> parseOk(std::string_view Src) {
  auto P = ParsedProgram::parse(Src);
  EXPECT_TRUE(P->ok()) << P->diags().str();
  return P;
}

/// fac 4 with one qualified annotation per monitor in the cascade.
const char *QuadSrc =
    "letrec fac = lambda x. "
    "{profile:fac}: {trace:fac(x)}: {collect:fac}: {cover:fac}: "
    "if x = 0 then 1 else x * fac (x - 1) in fac 4";

} // namespace

TEST(CascadeDepthTest, FourMonitorsEachSeeTheirAnnotations) {
  auto P = parseOk(QuadSrc);
  CallProfiler Prof;
  Tracer Trc;
  CollectingMonitor Coll;
  CoverageMonitor Cov;
  Cascade C = cascadeOf({&Prof, &Trc, &Coll, &Cov});
  DiagnosticSink D;
  ASSERT_TRUE(C.validateFor(P->root(), D)) << D.str();

  RunResult R = evaluate(C, P->root());
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.IntValue, 24);
  ASSERT_EQ(R.FinalStates.size(), 4u);
  EXPECT_EQ(CallProfiler::state(*R.FinalStates[0]).count("fac"), 5u);
  EXPECT_EQ(Tracer::state(*R.FinalStates[1]).Chan.numLines(), 10u);
  const auto *Vals =
      CollectingMonitor::state(*R.FinalStates[2]).setFor("fac");
  ASSERT_NE(Vals, nullptr);
  EXPECT_EQ(*Vals, (std::set<std::string>{"1", "2", "6", "24"}));
  EXPECT_EQ(CoverageMonitor::state(*R.FinalStates[3]).TotalHits, 5u);
}

TEST(CascadeDepthTest, CascadeOrderDoesNotChangeStates) {
  // With disjoint (qualified) syntaxes, the monitors' final states are
  // independent of cascade order.
  auto P = parseOk(QuadSrc);
  CallProfiler Prof;
  Tracer Trc;
  CollectingMonitor Coll;
  CoverageMonitor Cov;
  Cascade AB = cascadeOf({&Prof, &Trc, &Coll, &Cov});
  Cascade BA = cascadeOf({&Cov, &Coll, &Trc, &Prof});
  RunResult R1 = evaluate(AB, P->root());
  RunResult R2 = evaluate(BA, P->root());
  ASSERT_TRUE(R1.Ok && R2.Ok);
  EXPECT_EQ(R1.ValueText, R2.ValueText);
  EXPECT_EQ(R1.FinalStates[0]->str(), R2.FinalStates[3]->str());
  EXPECT_EQ(R1.FinalStates[1]->str(), R2.FinalStates[2]->str());
  EXPECT_EQ(R1.FinalStates[2]->str(), R2.FinalStates[1]->str());
  EXPECT_EQ(R1.FinalStates[3]->str(), R2.FinalStates[0]->str());
}

TEST(CascadeDepthTest, DirectAndMachineAgreeOnDeepCascades) {
  auto P = parseOk(QuadSrc);
  CallProfiler Prof;
  Tracer Trc;
  CollectingMonitor Coll;
  CoverageMonitor Cov;
  Cascade C = cascadeOf({&Prof, &Trc, &Coll, &Cov});
  RunResult M = evaluate(C, P->root());
  RunResult D = runDirect(P->root(), &C);
  ASSERT_TRUE(M.Ok && D.Ok) << M.Error << D.Error;
  ASSERT_EQ(M.FinalStates.size(), D.FinalStates.size());
  for (size_t I = 0; I < M.FinalStates.size(); ++I)
    EXPECT_EQ(M.FinalStates[I]->str(), D.FinalStates[I]->str());
}

TEST(CascadeDepthTest, SameMonitorTypeTwiceViaQualifiers) {
  // Two counting profilers with different labels coexist.
  auto P = parseOk("letrec f = lambda n. if n = 0 then {ca:A}: 0 else "
                   "({cb:B}: n) + f (n - 1) in f 3");
  class NamedCounting : public CountingProfiler {
  public:
    NamedCounting(std::string N) : Nm(std::move(N)) {}
    std::string_view name() const override { return Nm; }

  private:
    std::string Nm;
  };
  NamedCounting CA("ca"), CB("cb");
  Cascade C = cascadeOf({&CA, &CB});
  RunResult R = evaluate(C, P->root());
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.FinalStates[0]->str(), "<1, 0>");
  EXPECT_EQ(R.FinalStates[1]->str(), "<0, 3>");
}

TEST(CascadeDepthTest, EmptyCascadeIsStandardSemantics) {
  auto P = parseOk("{A}: 1 + 2");
  Cascade Empty;
  RunResult R = evaluate(Empty, P->root());
  EXPECT_TRUE(R.Ok);
  EXPECT_EQ(R.IntValue, 3);
  EXPECT_TRUE(R.FinalStates.empty());
}

TEST(CascadeDepthTest, MonitorsComposeAcrossStrategies) {
  auto P = parseOk(QuadSrc);
  CallProfiler Prof;
  Tracer Trc;
  for (Strategy S :
       {Strategy::Strict, Strategy::CallByName, Strategy::CallByNeed}) {
    Cascade C = cascadeOf({&Prof, &Trc});
    RunResult R = evaluate(C & StrategyTag{S}, P->root());
    ASSERT_TRUE(R.Ok) << strategyName(S) << ": " << R.Error;
    EXPECT_EQ(R.IntValue, 24) << strategyName(S);
    EXPECT_EQ(CallProfiler::state(*R.FinalStates[0]).count("fac"), 5u)
        << strategyName(S);
  }
}
