//===- tests/vm_fusion_test.cpp - Superinstruction fusion & tail reuse -----===//
//
// The peephole fusion pass and the self-tail-call frame-reuse optimisation
// are pure implementation refinements: Section 9.1's specialized program
// must stay observationally identical to the source machine — same
// answers, same step counts, same monitor states. These tests pin that
// down differentially (fused vs. unfused VM vs. CEK machine, monitored and
// unmonitored), plus the structural properties the pass must respect:
// jump targets block fusion, probes break fusion windows, and frame reuse
// never fires when a closure can capture the activation frame.
//
//===----------------------------------------------------------------------===//

#include "compile/Compiler.h"
#include "compile/VM.h"
#include "interp/Eval.h"
#include "monitors/Profiler.h"
#include "syntax/Printer.h"

#include "RandomProgram.h"

#include <gtest/gtest.h>

using namespace monsem;

namespace {

std::unique_ptr<ParsedProgram> parseOk(std::string_view Src) {
  auto P = ParsedProgram::parse(Src);
  EXPECT_TRUE(P->ok()) << P->diags().str();
  return P;
}

/// evaluateCompiled with an explicit fusion switch, so the same program can
/// be run through the fused and unfused pipelines under one cascade.
RunResult runVM(const Cascade &C, const Expr *Program, RunOptions Opts,
                bool Fuse) {
  DiagnosticSink Diags;
  if (!C.empty() && !C.validateFor(Program, Diags)) {
    RunResult R;
    R.Error = Diags.str();
    return R;
  }
  CompileOptions CO;
  CO.Instrument = !C.empty();
  CO.Fuse = Fuse;
  std::unique_ptr<CompiledProgram> CP = compileProgram(Program, Diags, CO);
  if (!CP) {
    RunResult R;
    R.Error = Diags.str();
    return R;
  }
  if (C.empty())
    return runCompiled(*CP, nullptr, Opts);
  RuntimeCascade RC(C, Opts.MonitorFaultPolicy, Opts.MonitorRetryBudget);
  RunResult R = runCompiled(*CP, &RC, Opts);
  R.FinalStates = RC.takeStates();
  R.MonitorFaults = RC.takeFaults();
  return R;
}

std::string statesOf(const RunResult &R) {
  std::string Out;
  for (const auto &S : R.FinalStates)
    Out += S->str() + ";";
  return Out;
}

size_t countSubstr(const std::string &Haystack, std::string_view Needle) {
  size_t N = 0;
  for (size_t At = Haystack.find(Needle); At != std::string::npos;
       At = Haystack.find(Needle, At + Needle.size()))
    ++N;
  return N;
}

} // namespace

TEST(VMFusionTest, FusionProducesSuperinstructions) {
  auto P = parseOk("letrec fib = lambda n. if n < 2 then n else "
                   "fib (n - 1) + fib (n - 2) in fib 10");
  DiagnosticSink D;
  CompileOptions Raw;
  Raw.Fuse = false;
  auto CP = compileProgram(P->root(), D, Raw);
  ASSERT_NE(CP, nullptr);
  size_t Before = CP->numInstructions();
  size_t Fused = fuseSuperinstructions(*CP);
  EXPECT_GT(Fused, 0u);
  EXPECT_LT(CP->numInstructions(), Before);
  std::string Dis = CP->disassemble();
  // `n < 2` is Var;Const;Prim2;JumpIfFalse: two rounds of fusion collapse
  // it to a single compare-and-branch pair.
  EXPECT_NE(Dis.find("varconstprim2"), std::string::npos);
  // `fib (n - 1)` looks up the recursive binding right before the call.
  EXPECT_NE(Dis.find("varcall"), std::string::npos)
      << Dis;
}

TEST(VMFusionTest, StepCountsAreIdenticalFusedVsUnfused) {
  auto P = parseOk("letrec fib = lambda n. if n < 2 then n else "
                   "fib (n - 1) + fib (n - 2) in fib 12");
  Cascade Empty;
  RunOptions Opts;
  RunResult F = runVM(Empty, P->root(), Opts, /*Fuse=*/true);
  RunResult U = runVM(Empty, P->root(), Opts, /*Fuse=*/false);
  ASSERT_TRUE(F.Ok && U.Ok) << F.Error << U.Error;
  EXPECT_EQ(F.ValueText, U.ValueText);
  // Cost accounting: each fused instruction advances the counter by the
  // number of source instructions it replaces.
  EXPECT_EQ(F.Steps, U.Steps);
}

// A branch landing *between* a fusable pair must block fusion: the fused
// instruction would skip the landing pad's first half. Handcrafted
// bytecode, since the compiler never emits this shape with the second
// instruction of a pair as a jump target except via `if` joins.
namespace {

std::unique_ptr<CompiledProgram> mkJumpTargetProgram(bool Cond) {
  auto P = std::make_unique<CompiledProgram>();
  P->Blocks.emplace_back();
  CodeBlock &B = P->Blocks[0];
  B.Name = "<main>";
  auto AddConst = [&](Value V) {
    P->ConstPool.push_back(V);
    return static_cast<uint32_t>(P->ConstPool.size() - 1);
  };
  auto Emit = [&](Op Code, uint32_t A = 0) {
    Instr I;
    I.Code = Code;
    I.A = A;
    B.Code.push_back(I);
  };
  uint32_t Zero = AddConst(Value::mkInt(0, P->ConstArena));
  uint32_t CondIdx = AddConst(Value::mkBool(Cond));
  uint32_t Ten = AddConst(Value::mkInt(10, P->ConstArena));
  uint32_t One = AddConst(Value::mkInt(1, P->ConstArena));
  uint32_t Twenty = AddConst(Value::mkInt(20, P->ConstArena));
  uint32_t Two = AddConst(Value::mkInt(2, P->ConstArena));
  uint32_t Add = static_cast<uint32_t>(Prim2Op::Add);
  Emit(Op::Const, Zero);             // 0
  Emit(Op::Const, Zero);             // 1: fuses with 2 -> constprim2
  Emit(Op::Prim2, Add);              // 2
  Emit(Op::Const, CondIdx);          // 3
  Emit(Op::JumpIfFalse, 8);          // 4
  Emit(Op::Const, Ten);              // 5
  Emit(Op::Const, One);              // 6
  Emit(Op::Jump, 10);                // 7
  Emit(Op::Const, Twenty);           // 8
  Emit(Op::Const, Two);              // 9: must NOT fuse with 10
  Emit(Op::Prim2, Add);              // 10: Jump target
  Emit(Op::Halt);                    // 11
  return P;
}

} // namespace

TEST(VMFusionTest, JumpTargetBlocksFusion) {
  for (bool Cond : {true, false}) {
    auto Raw = mkJumpTargetProgram(Cond);
    auto Fused = mkJumpTargetProgram(Cond);
    fuseSuperinstructions(*Fused);

    // Exactly the (1,2) pair fuses; the (9,10) pair is protected because
    // instruction 10 is the Jump's landing pad.
    EXPECT_EQ(Fused->Blocks[0].Code.size(), 11u);
    std::string Dis = Fused->disassemble();
    EXPECT_EQ(countSubstr(Dis, "constprim2"), 1u) << Dis;
    EXPECT_EQ(countSubstr(Dis, "prim2 +"), 1u) << Dis;

    for (bool Threaded : {false, true}) {
      RunOptions Opts;
      Opts.VMThreaded = Threaded;
      RunResult RRaw = runCompiled(*Raw, nullptr, Opts);
      RunResult RFused = runCompiled(*Fused, nullptr, Opts);
      ASSERT_TRUE(RRaw.Ok && RFused.Ok) << RRaw.Error << RFused.Error;
      EXPECT_EQ(RRaw.IntValue, Cond ? 11 : 22);
      EXPECT_EQ(RFused.IntValue, RRaw.IntValue);
      EXPECT_EQ(RFused.Steps, RRaw.Steps);
    }
  }
}

TEST(VMFusionTest, ProbesBlockFusionWindows) {
  // The Prim2's left operand is on the stack before the probe window
  // opens; no fusion rule mentions MonPre/MonPost, so the pair
  // (MonPost, Prim2) stays unfused and the probe observes the
  // paper-exact instruction sequence.
  auto P = parseOk("(lambda x. x + ({A}: x)) 3");
  DiagnosticSink D;
  auto CP = compileProgram(P->root(), D);
  ASSERT_NE(CP, nullptr);
  std::string Dis = CP->disassemble();
  EXPECT_NE(Dis.find("monpre"), std::string::npos);
  EXPECT_NE(Dis.find("prim2 +"), std::string::npos);
  EXPECT_EQ(Dis.find("varprim2"), std::string::npos) << Dis;

  // Fusion on either side of a probe window is fine — states must come
  // out identical fused vs. unfused vs. the CEK machine.
  auto Q = parseOk("letrec f = lambda n. {A}: (n + 1) in f 1 + f 2");
  CountingProfiler Count;
  Cascade C;
  C.use(Count);
  RunOptions Opts;
  RunResult Interp = evaluate(EvalMode(C), Q->root());
  RunResult F = runVM(C, Q->root(), Opts, /*Fuse=*/true);
  RunResult U = runVM(C, Q->root(), Opts, /*Fuse=*/false);
  ASSERT_TRUE(Interp.Ok && F.Ok && U.Ok)
      << Interp.Error << F.Error << U.Error;
  EXPECT_EQ(F.ValueText, Interp.ValueText);
  EXPECT_EQ(statesOf(F), statesOf(Interp));
  EXPECT_EQ(statesOf(F), statesOf(U));
  EXPECT_EQ(F.Steps, U.Steps);
}

//===----------------------------------------------------------------------===//
// Differential corpus: fused and unfused VM (both dispatchers) vs. the CEK
// machine over generated programs, unmonitored and monitored.
//===----------------------------------------------------------------------===//

class VMFusionDifferentialTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(VMFusionDifferentialTest, FusedAgreesWithMachineAndUnfused) {
  AstContext Ctx;
  const Expr *Prog = monsem::testing::genProgram(Ctx, GetParam());
  RunOptions Opts;
  Opts.MaxSteps = 1000000;
  RunResult Interp = evaluate(Prog, Opts);
  Cascade Empty;

  RunResult Base = runVM(Empty, Prog, Opts, /*Fuse=*/false);
  EXPECT_TRUE(Interp.sameOutcome(Base)) << printExpr(Prog);
  for (bool Fuse : {false, true}) {
    for (bool Threaded : {false, true}) {
      RunOptions O = Opts;
      O.VMThreaded = Threaded;
      RunResult R = runVM(Empty, Prog, O, Fuse);
      EXPECT_TRUE(Base.sameOutcome(R))
          << printExpr(Prog) << "\nfuse=" << Fuse << " threaded=" << Threaded
          << "\nbase: " << (Base.Ok ? Base.ValueText : Base.Error)
          << "\nvariant: " << (R.Ok ? R.ValueText : R.Error);
      if (Base.Ok && R.Ok) {
        EXPECT_EQ(Base.Steps, R.Steps) << printExpr(Prog);
      }
    }
  }
}

TEST_P(VMFusionDifferentialTest, MonitoredStatesAgreeFusedVsUnfused) {
  AstContext Ctx;
  const Expr *Prog = monsem::testing::genProgram(Ctx, GetParam());
  RunOptions Opts;
  Opts.MaxSteps = 1000000;

  // Two disjoint monitors: the corpus annotates with bare labels A/B and
  // m0..m9; each profiler claims a distinct pair, the rest go unclaimed.
  CountingProfiler CountAB;
  CountingProfiler CountM("m0", "m1");
  Cascade Single;
  Single.use(CountAB);
  Cascade Pair;
  Pair.use(CountAB);
  Pair.use(CountM);

  for (const Cascade *C : {&Single, &Pair}) {
    RunResult Interp = evaluate(*C & maxSteps(Opts.MaxSteps), Prog);
    RunResult F = runVM(*C, Prog, Opts, /*Fuse=*/true);
    RunResult U = runVM(*C, Prog, Opts, /*Fuse=*/false);
    EXPECT_TRUE(U.sameOutcome(F)) << printExpr(Prog);
    EXPECT_TRUE(Interp.sameOutcome(F)) << printExpr(Prog);
    if (Interp.Ok && F.Ok && U.Ok) {
      EXPECT_EQ(statesOf(F), statesOf(U)) << printExpr(Prog);
      EXPECT_EQ(statesOf(F), statesOf(Interp)) << printExpr(Prog);
      EXPECT_EQ(F.Steps, U.Steps) << printExpr(Prog);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VMFusionDifferentialTest,
                         ::testing::Range(0u, 60u));

//===----------------------------------------------------------------------===//
// Self-tail-call frame reuse.
//===----------------------------------------------------------------------===//

namespace {

std::string downSrc(int N) {
  return "letrec loop = lambda n. if n = 0 then 7 else loop (n - 1) in "
         "loop " +
         std::to_string(N);
}

} // namespace

TEST(TailReuseTest, VMRunsSelfLoopsInConstantArena) {
  Cascade Empty;
  RunOptions Opts; // ReuseTailFrames defaults on.
  auto Short = parseOk(downSrc(1000));
  auto Long = parseOk(downSrc(100000));
  RunResult RS = runVM(Empty, Short->root(), Opts, /*Fuse=*/true);
  RunResult RL = runVM(Empty, Long->root(), Opts, /*Fuse=*/true);
  ASSERT_TRUE(RS.Ok && RL.Ok) << RS.Error << RL.Error;
  EXPECT_EQ(RL.IntValue, 7);
  // O(1): 100x more iterations, identical arena high-water mark.
  EXPECT_EQ(RS.ArenaBytes, RL.ArenaBytes);

  RunOptions Off = Opts;
  Off.ReuseTailFrames = false;
  RunResult NS = runVM(Empty, Short->root(), Off, /*Fuse=*/true);
  RunResult NL = runVM(Empty, Long->root(), Off, /*Fuse=*/true);
  ASSERT_TRUE(NS.Ok && NL.Ok);
  EXPECT_GT(NL.ArenaBytes, NS.ArenaBytes);
  // Reuse is invisible to everything but the allocator.
  EXPECT_EQ(NL.IntValue, RL.IntValue);
  EXPECT_EQ(NL.Steps, RL.Steps);
}

TEST(TailReuseTest, CEKRunsSelfLoopsInConstantArena) {
  RunOptions Opts;
  auto Short = parseOk(downSrc(1000));
  auto Long = parseOk(downSrc(100000));
  RunResult RS = evaluate(Short->root(), Opts);
  RunResult RL = evaluate(Long->root(), Opts);
  ASSERT_TRUE(RS.Ok && RL.Ok) << RS.Error << RL.Error;
  EXPECT_EQ(RL.IntValue, 7);
  EXPECT_EQ(RS.ArenaBytes, RL.ArenaBytes);

  RunOptions Off = Opts;
  Off.ReuseTailFrames = false;
  RunResult NS = evaluate(Short->root(), Off);
  RunResult NL = evaluate(Long->root(), Off);
  ASSERT_TRUE(NS.Ok && NL.Ok);
  EXPECT_GT(NL.ArenaBytes, NS.ArenaBytes);
  EXPECT_EQ(NL.IntValue, RL.IntValue);
  EXPECT_EQ(NL.Steps, RL.Steps);
}

TEST(TailReuseTest, ClosureCaptureDisablesReuse) {
  // Each iteration allocates a closure capturing that iteration's frame;
  // reusing the frame would make every closure see the final n. The
  // resolver's FrameReusable analysis (and the VM's no-MkClosure block
  // check) must keep reuse off here.
  const char *Src =
      "letrec build = lambda n. lambda acc. if n = 0 then acc else "
      "build (n - 1) ((lambda y. n) : acc) in "
      "letrec sumap = lambda l. if null l then 0 else "
      "(hd l) 0 + sumap (tl l) in sumap (build 5 [])";
  auto P = parseOk(Src);
  Cascade Empty;
  RunOptions Opts;
  RunResult Interp = evaluate(P->root(), Opts);
  RunResult VM = runVM(Empty, P->root(), Opts, /*Fuse=*/true);
  ASSERT_TRUE(Interp.Ok && VM.Ok) << Interp.Error << VM.Error;
  EXPECT_EQ(Interp.IntValue, 15); // 1+2+3+4+5, not 5*n for a stale n.
  EXPECT_EQ(VM.IntValue, 15);
}

TEST(TailReuseTest, CoalescedLetrecSlotsResetOnReuse) {
  // The reused frame's extra letrec slot must come back uninitialized:
  // referencing it before rebinding is still the paper's knot error.
  const char *Src = "letrec f = lambda n. if n = 0 then 0 else "
                    "letrec v = n in f (v - 1) in f 10";
  auto P = parseOk(Src);
  Cascade Empty;
  RunOptions Opts;
  RunResult Interp = evaluate(P->root(), Opts);
  RunResult VM = runVM(Empty, P->root(), Opts, /*Fuse=*/true);
  ASSERT_TRUE(Interp.Ok && VM.Ok) << Interp.Error << VM.Error;
  EXPECT_EQ(Interp.IntValue, 0);
  EXPECT_EQ(VM.IntValue, 0);

  RunOptions Off = Opts;
  Off.ReuseTailFrames = false;
  EXPECT_EQ(evaluate(P->root(), Off).Steps, Interp.Steps);
}

TEST(TailReuseTest, MonitoredLoopKeepsExactStates) {
  // An annotated loop body disables reuse (probe-observed environments
  // stay paper-exact) and the states must match the CEK machine's.
  const char *Src = "letrec loop = lambda n. if n = 0 then 0 else "
                    "loop ({A}: (n - 1)) in loop 50";
  auto P = parseOk(Src);
  CountingProfiler Count;
  Cascade C;
  C.use(Count);
  RunOptions Opts;
  RunResult Interp = evaluate(EvalMode(C), P->root());
  RunResult F = runVM(C, P->root(), Opts, /*Fuse=*/true);
  RunResult U = runVM(C, P->root(), Opts, /*Fuse=*/false);
  ASSERT_TRUE(Interp.Ok && F.Ok && U.Ok)
      << Interp.Error << F.Error << U.Error;
  EXPECT_EQ(statesOf(F), statesOf(Interp));
  EXPECT_EQ(statesOf(F), statesOf(U));
  EXPECT_EQ(F.Steps, U.Steps);
}
