//===- tests/imp_soundness_test.cpp - Theorem 7.7 for L_imp ----------------===//

#include "imp/ImpMachine.h"
#include "imp/ImpMonitors.h"
#include "monitors/Profiler.h"

#include "RandomImpProgram.h"

#include <gtest/gtest.h>

using namespace monsem;

namespace {
constexpr uint64_t Fuel = 300000;
} // namespace

class ImpSoundnessProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(ImpSoundnessProperty, MonitorsPreserveOutputAndStore) {
  ImpContext Ctx;
  const Cmd *Prog = monsem::testing::genImpProgram(Ctx, GetParam());
  ImpRunOptions Opts;
  Opts.MaxSteps = Fuel;
  ImpRunResult Std = runImp(Prog, Opts);

  ImpStmtProfiler Prof;
  ImpTracer Trc;
  ImpWatchMonitor WatchA("a");
  for (const ImpMonitor *M :
       {static_cast<const ImpMonitor *>(&Prof),
        static_cast<const ImpMonitor *>(&Trc),
        static_cast<const ImpMonitor *>(&WatchA)}) {
    ImpCascade C;
    C.use(*M);
    ImpRunResult Mon = runImp(C, Prog, Opts);
    EXPECT_TRUE(Mon.sameOutcome(Std))
        << "monitor " << M->name() << " changed:\n"
        << printCmd(Prog);
  }
}

TEST_P(ImpSoundnessProperty, StrippingPreservesOutcome) {
  ImpContext Ctx;
  const Cmd *Prog = monsem::testing::genImpProgram(Ctx, GetParam());
  const Cmd *Plain = stripCmdAnnotations(Ctx, Prog);
  ImpRunOptions Opts;
  Opts.MaxSteps = Fuel;
  EXPECT_TRUE(runImp(Prog, Opts).sameOutcome(runImp(Plain, Opts)))
      << printCmd(Prog);
}

TEST_P(ImpSoundnessProperty, MonitorStatesAreDeterministic) {
  ImpContext Ctx;
  const Cmd *Prog = monsem::testing::genImpProgram(Ctx, GetParam());
  ImpStmtProfiler Prof;
  ImpCascade C;
  C.use(Prof);
  ImpRunOptions Opts;
  Opts.MaxSteps = Fuel;
  ImpRunResult R1 = runImp(C, Prog, Opts);
  ImpRunResult R2 = runImp(C, Prog, Opts);
  ASSERT_EQ(R1.FinalStates.size(), R2.FinalStates.size());
  for (size_t I = 0; I < R1.FinalStates.size(); ++I)
    EXPECT_EQ(R1.FinalStates[I]->str(), R2.FinalStates[I]->str());
}

TEST_P(ImpSoundnessProperty, CrossLevelMonitoringPreservesOutcome) {
  ImpContext Ctx;
  const Cmd *Prog = monsem::testing::genImpProgram(Ctx, GetParam());
  ImpRunOptions Opts;
  Opts.MaxSteps = Fuel;
  ImpRunResult Std = runImp(Prog, Opts);

  ImpStmtProfiler CmdProf;
  ImpCascade CmdC;
  CmdC.use(CmdProf);
  CallProfiler ExprProf;
  Cascade ExprC;
  ExprC.use(ExprProf);
  ImpRunResult Mon = runImp(CmdC, ExprC, Prog, Opts);
  EXPECT_TRUE(Mon.sameOutcome(Std)) << printCmd(Prog);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ImpSoundnessProperty,
                         ::testing::Range(0u, 80u));
