//===- tests/property_test.cpp - Cross-cutting property tests --------------===//
//
// Properties beyond soundness: printer round-trips over generated trees,
// specializer idempotence, evaluator stack safety under deep nesting, and
// arena accounting.
//
//===----------------------------------------------------------------------===//

#include "interp/Eval.h"
#include "monitors/Profiler.h"
#include "pe/PartialEval.h"
#include "syntax/Parser.h"
#include "syntax/Printer.h"

#include "RandomProgram.h"

#include <gtest/gtest.h>

#include <random>

using namespace monsem;

//===----------------------------------------------------------------------===//
// Printer round-trip over generated programs
//===----------------------------------------------------------------------===//

class PrinterRoundTrip : public ::testing::TestWithParam<unsigned> {};

TEST_P(PrinterRoundTrip, ParsePrintParseIsIdentity) {
  AstContext Ctx;
  const Expr *Prog = monsem::testing::genProgram(Ctx, GetParam());
  std::string Printed = printExpr(Prog);
  AstContext Ctx2;
  DiagnosticSink Diags;
  const Expr *Reparsed = parseProgram(Ctx2, Printed, Diags);
  ASSERT_NE(Reparsed, nullptr) << Printed << "\n" << Diags.str();
  EXPECT_TRUE(exprEquals(Prog, Reparsed))
      << "printed:  " << Printed << "\nreprint: " << printExpr(Reparsed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrinterRoundTrip, ::testing::Range(0u, 150u));

//===----------------------------------------------------------------------===//
// Specializer idempotence
//===----------------------------------------------------------------------===//

class PEIdempotence : public ::testing::TestWithParam<unsigned> {};

TEST_P(PEIdempotence, SpecializingTheResidualPreservesTheAnswer) {
  AstContext Ctx;
  const Expr *Prog = monsem::testing::genProgram(Ctx, GetParam());
  AstContext Out1, Out2;
  PEOptions Opts;
  Opts.MaxSteps = 150000;
  PEResult R1 = partialEvaluate(Out1, Prog, Opts);
  PEResult R2 = partialEvaluate(Out2, R1.Residual, Opts);
  RunOptions RO;
  RO.MaxSteps = 1000000;
  RunResult A = evaluate(Prog, RO);
  RunResult B = evaluate(R2.Residual, RO);
  EXPECT_TRUE(A.sameOutcome(B))
      << printExpr(Prog) << "\n-> " << printExpr(R1.Residual) << "\n-> "
      << printExpr(R2.Residual);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PEIdempotence, ::testing::Range(0u, 40u));

//===----------------------------------------------------------------------===//
// Stack safety under extreme nesting
//===----------------------------------------------------------------------===//

TEST(StressTest, DeeplyNestedAnnotationsAreStackSafe) {
  // 2000 nested {aN}: wrappers around one constant; the machine's MonPost
  // chain must bounce through the trampoline, not the C stack.
  std::string Src;
  for (int I = 0; I < 2000; ++I)
    Src += "{a" + std::to_string(I) + "}: ";
  Src += "42";
  auto P = ParsedProgram::parse(Src);
  ASSERT_TRUE(P->ok()) << P->diags().str();
  EXPECT_EQ(evaluate(P->root()).IntValue, 42);
}

TEST(StressTest, LongConsChainsAreStackSafe) {
  // A 100k-element literal list: Prim2Apply return chains must bounce.
  std::string Src = "letrec build = lambda n. if n = 0 then [] else "
                    "n : build (n - 1) in "
                    "letrec len = lambda l. if l = [] then 0 else "
                    "1 + len (tl l) in len (build 100000)";
  auto P = ParsedProgram::parse(Src);
  ASSERT_TRUE(P->ok());
  RunResult R = evaluate(P->root());
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.IntValue, 100000);
}

TEST(StressTest, DeepLetrecNesting) {
  std::string Src;
  for (int I = 0; I < 500; ++I)
    Src += "letrec x" + std::to_string(I) + " = " + std::to_string(I) +
           " in ";
  Src += "x0 + x499";
  auto P = ParsedProgram::parse(Src);
  ASSERT_TRUE(P->ok());
  EXPECT_EQ(evaluate(P->root()).IntValue, 499);
}

TEST(StressTest, ManyDistinctAnnotationsResolveViaCache) {
  // 500 distinct annotation labels, all claimed by one monitor; the
  // resolution cache must keep this linear.
  std::string Src = "0";
  for (int I = 0; I < 500; ++I)
    Src = "({m" + std::to_string(I) + "}: 1) + (" + Src + ")";
  auto P = ParsedProgram::parse(Src);
  ASSERT_TRUE(P->ok());
  CallProfiler Prof;
  Cascade C;
  C.use(Prof);
  RunResult R = evaluate(C, P->root());
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.IntValue, 500);
  EXPECT_EQ(CallProfiler::state(*R.FinalStates[0]).Counters.size(), 500u);
}

//===----------------------------------------------------------------------===//
// Arena accounting
//===----------------------------------------------------------------------===//

TEST(ArenaAccountingTest, MachineReportsAllocation) {
  auto P = ParsedProgram::parse("letrec f = lambda n. if n = 0 then [] "
                                "else n : f (n - 1) in f 1000");
  ASSERT_TRUE(P->ok());
  StandardMachine M(P->root(), RunOptions());
  RunResult R = M.run();
  ASSERT_TRUE(R.Ok);
  // 1000 cells plus env/frames: at least 16 bytes per cell.
  EXPECT_GT(M.arenaBytes(), 16000u);
}

//===----------------------------------------------------------------------===//
// Parser robustness (fuzz): never crash, always report
//===----------------------------------------------------------------------===//

namespace {

std::string randomText(unsigned Seed) {
  std::mt19937 Rng(Seed);
  const char *Fragments[] = {
      "lambda", "letrec", "let",  "in",  "if",  "then", "else", "(",
      ")",      "[",      "]",    "{",   "}",   ":",    ",",    ".",
      "+",      "-",      "*",    "/",   "=",   "<",    ">",    "x",
      "f",      "42",     "true", "[]",  "\"s\"", "and", "or",  ";",
      ":=",     "while",  "do",   "end", "--c\n", "@",  "hd",   "9999",
  };
  std::uniform_int_distribution<size_t> Pick(0, std::size(Fragments) - 1);
  std::uniform_int_distribution<int> Len(1, 40);
  std::string Out;
  int N = Len(Rng);
  for (int I = 0; I < N; ++I) {
    Out += Fragments[Pick(Rng)];
    Out += ' ';
  }
  return Out;
}

} // namespace

class ParserFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParserFuzz, NeverCrashesAndAlwaysReports) {
  std::string Src = randomText(GetParam());
  AstContext Ctx;
  DiagnosticSink Diags;
  const Expr *E = parseProgram(Ctx, Src, Diags);
  // Either a tree or diagnostics — never silence, never a crash.
  EXPECT_TRUE(E != nullptr || Diags.hasErrors()) << Src;
  if (E) {
    // Whatever parsed must round-trip.
    std::string Printed = printExpr(E);
    AstContext Ctx2;
    DiagnosticSink D2;
    const Expr *E2 = parseProgram(Ctx2, Printed, D2);
    ASSERT_NE(E2, nullptr) << Printed;
    EXPECT_TRUE(exprEquals(E, E2)) << Printed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Range(0u, 300u));
