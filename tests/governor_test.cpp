//===- tests/governor_test.cpp - Resource governor ------------------------===//
//
// The governor (support/Governor.h) generalizes the old fuel counter into
// wall-clock deadlines, arena byte caps, continuation-depth bounds, and
// cooperative cancellation, reported through the structured Outcome enum.
// These tests pin down three properties:
//
//  1. Each limit produces its own Outcome, on every evaluator.
//  2. The deterministic limits (fuel, depth, memory) stop at a reproducible
//     step count — running twice gives an identical (Outcome, Steps) pair.
//  3. Tightly-governed runs of randomly generated programs never crash;
//     they end in a recognized Outcome.
//
//===----------------------------------------------------------------------===//

#include "RandomProgram.h"
#include "compile/VM.h"
#include "imp/ImpMachine.h"
#include "imp/ImpParser.h"
#include "interp/Direct.h"
#include "interp/Eval.h"
#include "support/Arena.h"

#include <gtest/gtest.h>

#include <atomic>

using namespace monsem;

namespace {

std::unique_ptr<ParsedProgram> parseOk(std::string_view Src) {
  auto P = ParsedProgram::parse(Src);
  EXPECT_TRUE(P->ok()) << P->diags().str();
  return P;
}

/// Diverges, allocating an environment frame per iteration.
const char *LoopSrc = "letrec loop = lambda x. loop (x + 1) in loop 0";

/// Non-tail recursion: continuation depth grows with n.
const char *DeepSrc =
    "letrec f = lambda x. if x = 0 then 0 else 1 + f (x - 1) in f 1000000";

} // namespace

//===----------------------------------------------------------------------===//
// Arena cap (direct)
//===----------------------------------------------------------------------===//

TEST(GovernorTest, ArenaByteCapFailsSoftWithoutAllocating) {
  // The cap is enforced at chunk granularity (first chunk is 16 KiB):
  // a request that would map past the cap throws before any memory is
  // committed, and the arena stays usable below the cap.
  Arena A;
  A.setByteLimit(40 * 1024);
  A.allocate(128, 8); // Maps the first 16 KiB chunk.
  size_t Before = A.bytesAllocated();
  EXPECT_THROW(A.allocate(64 * 1024, 8), ArenaLimitExceeded);
  EXPECT_EQ(A.bytesAllocated(), Before); // Cap check precedes the map.
  EXPECT_NE(A.allocate(64, 8), nullptr);
}

TEST(GovernorTest, ArenaUncappedByDefault) {
  Arena A;
  EXPECT_EQ(A.byteLimit(), 0u);
  EXPECT_NE(A.allocate(1 << 20, 8), nullptr);
}

//===----------------------------------------------------------------------===//
// CEK machine
//===----------------------------------------------------------------------===//

TEST(GovernorTest, FuelLimitMatchesLegacyMaxSteps) {
  auto P = parseOk(LoopSrc);
  RunOptions Legacy;
  Legacy.MaxSteps = 10000;
  RunResult RL = evaluate(P->root(), Legacy);
  EXPECT_EQ(RL.St, Outcome::FuelExhausted);
  EXPECT_TRUE(RL.FuelExhausted); // Legacy mirror field.

  RunOptions Gov;
  Gov.Limits.MaxSteps = 10000;
  RunResult RG = evaluate(P->root(), Gov);
  EXPECT_EQ(RG.St, Outcome::FuelExhausted);
  EXPECT_EQ(RG.Steps, RL.Steps); // Same stopping point either way.
}

TEST(GovernorTest, DeadlineStopsADivergentProgram) {
  auto P = parseOk(LoopSrc);
  RunOptions Opts;
  Opts.Limits.DeadlineMs = 30;
  RunResult R = evaluate(P->root(), Opts);
  EXPECT_EQ(R.St, Outcome::Deadline);
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(R.stoppedByGovernor());
}

TEST(GovernorTest, PreCancelledFlagStopsAtFirstCheckpoint) {
  auto P = parseOk(LoopSrc);
  std::atomic<bool> Cancel{true};
  RunOptions Opts;
  Opts.Limits.CancelFlag = &Cancel;
  Opts.Limits.CheckInterval = 64;
  RunResult R = evaluate(P->root(), Opts);
  EXPECT_EQ(R.St, Outcome::Cancelled);
  EXPECT_LE(R.Steps, 64u);
}

TEST(GovernorTest, ArenaCapSurfacesAsMemoryExceeded) {
  auto P = parseOk(LoopSrc);
  RunOptions Opts;
  Opts.Limits.MaxArenaBytes = 1 << 15;
  // With tail-call frame reuse the loop runs in O(1) arena and would never
  // hit the cap; this test is about the cap, so allocate per iteration.
  Opts.ReuseTailFrames = false;
  RunResult R = evaluate(P->root(), Opts);
  EXPECT_EQ(R.St, Outcome::MemoryExceeded);
}

TEST(GovernorTest, TailFrameReuseKeepsSelfLoopsInConstantArena) {
  // The same divergent loop that exhausts a 32 KiB arena cap in a few
  // thousand iterations without reuse runs 200k steps inside it with
  // reuse: the self-tail-call overwrites the caller's frame in place.
  auto P = parseOk(LoopSrc);
  RunOptions Opts;
  Opts.Limits.MaxSteps = 200000;
  Opts.Limits.MaxArenaBytes = 1 << 15;
  RunResult R = evaluate(P->root(), Opts);
  EXPECT_EQ(R.St, Outcome::FuelExhausted) << outcomeName(R.St);
  EXPECT_LT(R.ArenaBytes, uint64_t(1) << 15);

  Cascade Empty;
  RunResult V = evaluateCompiled(Empty, P->root(), Opts);
  EXPECT_EQ(V.St, Outcome::FuelExhausted) << outcomeName(V.St);
  EXPECT_LT(V.ArenaBytes, uint64_t(1) << 15);
}

TEST(GovernorTest, DepthBoundSurfacesAsDepthExceeded) {
  auto P = parseOk(DeepSrc);
  RunOptions Opts;
  Opts.Limits.MaxDepth = 500;
  Opts.Limits.CheckInterval = 64;
  RunResult R = evaluate(P->root(), Opts);
  EXPECT_EQ(R.St, Outcome::DepthExceeded);
}

TEST(GovernorTest, DeterministicLimitsReproduceExactly) {
  for (const char *Src : {LoopSrc, DeepSrc}) {
    auto P = parseOk(Src);
    for (bool Lexical : {false, true}) {
      RunOptions Opts;
      Opts.Lexical = Lexical;
      Opts.Limits.MaxSteps = 5000;
      Opts.Limits.MaxArenaBytes = 1 << 14;
      Opts.Limits.MaxDepth = 400;
      Opts.Limits.CheckInterval = 32;
      RunResult A = evaluate(P->root(), Opts);
      RunResult B = evaluate(P->root(), Opts);
      EXPECT_EQ(A.St, B.St);
      EXPECT_EQ(A.Steps, B.Steps);
      EXPECT_TRUE(A.sameOutcome(B));
      EXPECT_TRUE(A.stoppedByGovernor());
    }
  }
}

TEST(GovernorTest, GovernanceStopsCompareEqualOnlyByKind) {
  auto P = parseOk(LoopSrc);
  RunOptions Fuel;
  Fuel.Limits.MaxSteps = 1000;
  RunOptions Mem;
  Mem.Limits.MaxArenaBytes = 1 << 14;
  Mem.ReuseTailFrames = false; // The loop must actually reach the cap.
  RunResult A = evaluate(P->root(), Fuel);
  RunResult B = evaluate(P->root(), Mem);
  ASSERT_EQ(A.St, Outcome::FuelExhausted);
  ASSERT_EQ(B.St, Outcome::MemoryExceeded);
  EXPECT_FALSE(A.sameOutcome(B)); // Different stop kinds differ.
  RunResult A2 = evaluate(P->root(), Fuel);
  EXPECT_TRUE(A.sameOutcome(A2)); // Same kind matches.
}

//===----------------------------------------------------------------------===//
// Bytecode VM
//===----------------------------------------------------------------------===//

TEST(GovernorTest, VMHonorsFuelMemoryAndDepth) {
  Cascade Empty;

  auto Loop = parseOk(LoopSrc);
  RunOptions Fuel;
  Fuel.Limits.MaxSteps = 5000;
  RunResult RF = evaluateCompiled(Empty, Loop->root(), Fuel);
  EXPECT_EQ(RF.St, Outcome::FuelExhausted);
  RunResult RF2 = evaluateCompiled(Empty, Loop->root(), Fuel);
  EXPECT_EQ(RF.Steps, RF2.Steps);

  RunOptions Mem;
  Mem.Limits.MaxArenaBytes = 1 << 15;
  Mem.ReuseTailFrames = false; // The loop must actually reach the cap.
  RunResult RM = evaluateCompiled(Empty, Loop->root(), Mem);
  EXPECT_EQ(RM.St, Outcome::MemoryExceeded);

  auto Deep = parseOk(DeepSrc);
  RunOptions Depth;
  Depth.Limits.MaxDepth = 300;
  Depth.Limits.CheckInterval = 32;
  RunResult RD = evaluateCompiled(Empty, Deep->root(), Depth);
  EXPECT_EQ(RD.St, Outcome::DepthExceeded);

  RunOptions Deadline;
  Deadline.Limits.DeadlineMs = 30;
  RunResult RT = evaluateCompiled(Empty, Loop->root(), Deadline);
  EXPECT_EQ(RT.St, Outcome::Deadline);
}

//===----------------------------------------------------------------------===//
// Direct interpreter
//===----------------------------------------------------------------------===//

TEST(GovernorTest, DirectInterpreterHonorsCancelAndMemory) {
  auto P = parseOk(LoopSrc);

  DirectOptions Cancelled;
  Cancelled.CallBudget = 50000;
  std::atomic<bool> Flag{true};
  Cancelled.Limits.CancelFlag = &Flag;
  Cancelled.Limits.CheckInterval = 16;
  RunResult RC = runDirect(P->root(), nullptr, Cancelled);
  EXPECT_EQ(RC.St, Outcome::Cancelled);

  DirectOptions Mem;
  Mem.CallBudget = 200000;
  Mem.Limits.MaxArenaBytes = 1 << 14;
  Mem.Limits.CheckInterval = 16;
  RunResult RM = runDirect(P->root(), nullptr, Mem);
  EXPECT_EQ(RM.St, Outcome::MemoryExceeded);
  RunResult RM2 = runDirect(P->root(), nullptr, Mem);
  EXPECT_EQ(RM.Steps, RM2.Steps);

  // The call budget is the direct interpreter's native depth bound and
  // still reports as fuel exhaustion.
  DirectOptions Budget;
  Budget.CallBudget = 500;
  RunResult RB = runDirect(P->root(), nullptr, Budget);
  EXPECT_EQ(RB.St, Outcome::FuelExhausted);
}

//===----------------------------------------------------------------------===//
// Imperative machine
//===----------------------------------------------------------------------===//

TEST(GovernorTest, ImpHonorsDeadlineFuelAndDepth) {
  ImpContext Ctx;
  DiagnosticSink Diags;
  const Cmd *Loop =
      parseImpProgram(Ctx, "x := 0; while 0 < 1 do x := x + 1 end", Diags);
  ASSERT_NE(Loop, nullptr) << Diags.str();

  ImpRunOptions Fuel;
  Fuel.Limits.MaxSteps = 20000;
  ImpRunResult RF = runImp(Loop, Fuel);
  EXPECT_EQ(RF.St, Outcome::FuelExhausted);
  EXPECT_TRUE(RF.FuelExhausted);
  ImpRunResult RF2 = runImp(Loop, Fuel);
  EXPECT_EQ(RF.Steps, RF2.Steps);

  ImpRunOptions Deadline;
  Deadline.Limits.DeadlineMs = 30;
  ImpRunResult RT = runImp(Loop, Deadline);
  EXPECT_EQ(RT.St, Outcome::Deadline);

  // Expression recursion deep enough to cross MaxDepth but not the
  // machine's own C-stack guard.
  const Cmd *Deep = parseImpProgram(
      Ctx,
      "y := (letrec f = lambda v. if v = 0 then 0 else 1 + f (v - 1) "
      "in f 5000)",
      Diags);
  ASSERT_NE(Deep, nullptr) << Diags.str();
  ImpRunOptions Depth;
  Depth.Limits.MaxDepth = 100;
  Depth.Limits.CheckInterval = 16;
  ImpRunResult RD = runImp(Deep, Depth);
  EXPECT_EQ(RD.St, Outcome::DepthExceeded);
}

//===----------------------------------------------------------------------===//
// Stress: random programs under tight limits never crash
//===----------------------------------------------------------------------===//

TEST(GovernorTest, RandomProgramsUnderTightLimitsNeverCrash) {
  for (unsigned Seed = 0; Seed < 40; ++Seed) {
    AstContext Ctx;
    const Expr *Prog = monsem::testing::genProgram(Ctx, Seed);
    ASSERT_NE(Prog, nullptr);
    for (Strategy S :
         {Strategy::Strict, Strategy::CallByName, Strategy::CallByNeed}) {
      for (bool Lexical : {false, true}) {
        RunOptions Opts;
        Opts.Strat = S;
        Opts.Lexical = Lexical;
        Opts.Limits.MaxSteps = 2000;
        Opts.Limits.MaxArenaBytes = 1 << 15;
        Opts.Limits.MaxDepth = 256;
        Opts.Limits.CheckInterval = 64;
        RunResult A = evaluate(Prog, Opts);
        EXPECT_TRUE(A.St == Outcome::Ok || A.St == Outcome::Error ||
                    A.stoppedByGovernor())
            << "seed " << Seed << ": " << outcomeName(A.St);
        // Deterministic: the governed run reproduces exactly.
        RunResult B = evaluate(Prog, Opts);
        EXPECT_EQ(A.St, B.St) << "seed " << Seed;
        EXPECT_EQ(A.Steps, B.Steps) << "seed " << Seed;
      }
    }
    // VM under the same limits.
    Cascade Empty;
    RunOptions VOpts;
    VOpts.Limits.MaxSteps = 2000;
    VOpts.Limits.MaxArenaBytes = 1 << 15;
    VOpts.Limits.MaxDepth = 256;
    VOpts.Limits.CheckInterval = 64;
    RunResult V = evaluateCompiled(Empty, Prog, VOpts);
    EXPECT_TRUE(V.St == Outcome::Ok || V.St == Outcome::Error ||
                V.stoppedByGovernor())
        << "seed " << Seed << ": " << outcomeName(V.St);
  }
}
