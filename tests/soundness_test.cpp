//===- tests/soundness_test.cpp - Theorem 7.7 property tests ---------------===//
//
// Soundness: for every program sbar (s plus annotations), every monitor
// cascade, and every evaluation strategy, the monitored answer equals the
// standard answer:
//
//   (fix G) [s] a* k / Ans_std  ==  ((fix Gbar) [sbar] a* k sigma)|1
//
// Exercised over generated programs with every toolbox monitor and random
// cascades.
//
//===----------------------------------------------------------------------===//

#include "interp/Eval.h"
#include "monitors/CallGraph.h"
#include "monitors/Collecting.h"
#include "monitors/CostProfiler.h"
#include "monitors/FlightRecorder.h"
#include "monitors/Coverage.h"
#include "monitors/Demon.h"
#include "monitors/Profiler.h"
#include "monitors/Stepper.h"
#include "monitors/Tracer.h"
#include "syntax/Annotator.h"
#include "syntax/Printer.h"

#include "RandomProgram.h"

#include <gtest/gtest.h>

using namespace monsem;

namespace {

constexpr uint64_t Fuel = 500000;

RunResult runStd(const Expr *E, Strategy S = Strategy::Strict) {
  RunOptions Opts;
  Opts.Strat = S;
  Opts.MaxSteps = Fuel;
  return evaluate(E, Opts);
}

RunResult runMon(const Cascade &C, const Expr *E,
                 Strategy S = Strategy::Strict) {
  return evaluate(C & StrategyTag{S} & maxSteps(Fuel), E);
}

} // namespace

class SoundnessTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(SoundnessTest, EveryMonitorPreservesTheAnswer) {
  AstContext Ctx;
  const Expr *Prog = monsem::testing::genProgram(Ctx, GetParam());
  RunResult Std = runStd(Prog);

  CountingProfiler Count;
  CallProfiler Prof;
  Demon D = Demon::unsortedLists();
  CollectingMonitor Coll;
  Stepper Step;
  CoverageMonitor Cov;
  CostProfiler Cost;
  CallGraphMonitor Graph;
  FlightRecorder Rec(8);
  const Monitor *Monitors[] = {&Count, &Prof, &D,     &Coll, &Step,
                               &Cov,   &Cost, &Graph, &Rec};
  for (const Monitor *M : Monitors) {
    Cascade C;
    C.use(*M);
    RunResult Mon = runMon(C, Prog);
    EXPECT_TRUE(Mon.sameOutcome(Std))
        << "monitor " << M->name() << " changed the answer of:\n"
        << printExpr(Prog) << "\nstd: "
        << (Std.Ok ? Std.ValueText : Std.Error)
        << "\nmon: " << (Mon.Ok ? Mon.ValueText : Mon.Error);
  }
}

TEST_P(SoundnessTest, StrippingAnnotationsPreservesTheAnswer) {
  AstContext Ctx;
  const Expr *Prog = monsem::testing::genProgram(Ctx, GetParam());
  AstContext Other;
  const Expr *Plain = stripAnnotations(Other, Prog);
  RunResult A = runStd(Prog);
  RunResult B = runStd(Plain);
  EXPECT_TRUE(A.sameOutcome(B)) << printExpr(Prog);
}

TEST_P(SoundnessTest, TracerHeadersPreserveTheAnswer) {
  // Tracer-style annotation of every letrec function, then run traced.
  AstContext Ctx;
  const Expr *Prog = monsem::testing::genProgram(Ctx, GetParam());
  AnnotateOptions Opts;
  Opts.WithParams = true;
  const Expr *Traced = annotateFunctionBodies(Ctx, Prog, {}, Opts);
  Tracer Trc;
  Cascade C;
  C.use(Trc);
  RunResult Std = runStd(Prog);
  RunResult Mon = runMon(C, Traced);
  EXPECT_TRUE(Mon.sameOutcome(Std)) << printExpr(Traced);
}

TEST_P(SoundnessTest, RandomCascadePreservesTheAnswer) {
  AstContext Ctx;
  unsigned Seed = GetParam();
  const Expr *Prog = monsem::testing::genProgram(Ctx, Seed);
  // Shape-disjoint pair + coverage via qualifier-free bare labels would be
  // ambiguous, so use the qualified coverage convention instead: rely on
  // CountingProfiler (A/B only) + Tracer (headers only) + a negativity
  // demon accepting only heads starting with 'm'.
  CountingProfiler Count;
  Tracer Trc;
  class MLabelDemon : public Demon {
  public:
    MLabelDemon()
        : Demon("mdemon", [](Value V) {
            return V.is(ValueKind::Int) && V.asInt() < 0;
          }) {}
    bool accepts(const Annotation &Ann) const override {
      return !Ann.HasParams && !Ann.Head.str().empty() &&
             Ann.Head.str()[0] == 'm';
    }
  };
  MLabelDemon MD;
  Cascade C = cascadeOf({&Count, &Trc, &MD});
  DiagnosticSink Diags;
  ASSERT_TRUE(C.validateFor(Prog, Diags)) << Diags.str();
  RunResult Std = runStd(Prog);
  RunResult Mon = runMon(C, Prog);
  EXPECT_TRUE(Mon.sameOutcome(Std)) << printExpr(Prog);
}

TEST_P(SoundnessTest, SoundnessHoldsUnderLazyStrategies) {
  AstContext Ctx;
  const Expr *Prog = monsem::testing::genProgram(Ctx, GetParam());
  CallProfiler Prof;
  Cascade C;
  C.use(Prof);
  for (Strategy S : {Strategy::CallByName, Strategy::CallByNeed}) {
    RunResult Std = runStd(Prog, S);
    RunResult Mon = runMon(C, Prog, S);
    EXPECT_TRUE(Mon.sameOutcome(Std))
        << strategyName(S) << ": " << printExpr(Prog);
  }
}

TEST_P(SoundnessTest, MonitorStatesAreDeterministic) {
  AstContext Ctx;
  const Expr *Prog = monsem::testing::genProgram(Ctx, GetParam());
  CallProfiler Prof;
  Cascade C;
  C.use(Prof);
  RunResult R1 = runMon(C, Prog);
  RunResult R2 = runMon(C, Prog);
  ASSERT_EQ(R1.FinalStates.size(), R2.FinalStates.size());
  for (size_t I = 0; I < R1.FinalStates.size(); ++I)
    EXPECT_EQ(R1.FinalStates[I]->str(), R2.FinalStates[I]->str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoundnessTest, ::testing::Range(0u, 120u));
