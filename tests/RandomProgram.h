//===- tests/RandomProgram.h - Random L_lambda programs ---------*- C++ -*-===//
///
/// \file
/// A seeded generator of (mostly) well-behaved L_lambda programs for
/// property tests: soundness (monitored == standard, Thm. 7.7),
/// differential testing of the evaluators (direct CPS vs CEK vs bytecode
/// VM), and partial-evaluation correctness.
///
/// Generation is typed (Int / Bool / IntList) so most programs compute a
/// value; run-time errors (hd [], division by zero) are still possible and
/// are part of the compared outcome. Recursive functions follow a
/// structurally decreasing template, so almost all programs terminate;
/// tests additionally run with fuel.
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_TESTS_RANDOMPROGRAM_H
#define MONSEM_TESTS_RANDOMPROGRAM_H

#include "syntax/Ast.h"

#include <random>
#include <string>
#include <vector>

namespace monsem::testing {

class ProgramGen {
public:
  ProgramGen(AstContext &Ctx, unsigned Seed) : Ctx(Ctx), Rng(Seed) {}

  /// Generates a closed Int-valued program, possibly with annotations
  /// (bare labels m0..m9 and A/B), letrec functions, lists, and booleans.
  const Expr *gen() {
    // A couple of integer variables via lets, one recursive function, then
    // an Int body using everything in scope.
    const Expr *Body = genTop(3);
    return Body;
  }

private:
  AstContext &Ctx;
  std::mt19937 Rng;
  std::vector<Symbol> IntVars;
  std::vector<Symbol> FunVars;  ///< Int -> Int functions.
  std::vector<Symbol> ListVars; ///< Integer lists.
  unsigned NextName = 0;
  unsigned NextLabel = 0;

  unsigned pick(unsigned N) {
    return std::uniform_int_distribution<unsigned>(0, N - 1)(Rng);
  }
  bool flip(double P = 0.5) {
    return std::uniform_real_distribution<double>(0, 1)(Rng) < P;
  }
  Symbol fresh(const char *Prefix) {
    return Symbol::intern(std::string(Prefix) + std::to_string(NextName++));
  }

  /// Wraps \p E with a bare annotation about 20% of the time.
  const Expr *maybeAnnotate(const Expr *E) {
    if (!flip(0.2))
      return E;
    Annotation Ann;
    switch (pick(3)) {
    case 0:
      Ann.Head = Symbol::intern("A");
      break;
    case 1:
      Ann.Head = Symbol::intern("B");
      break;
    default:
      Ann.Head = Symbol::intern("m" + std::to_string(NextLabel++ % 10));
      break;
    }
    return Ctx.mkAnnot(Ctx.internAnnotation(std::move(Ann)), E);
  }

  const Expr *genTop(int Depth) {
    // let x = <int> in ... ; letrec f = ... in ... ; let l = <list> in ...
    switch (pick(4)) {
    case 0: {
      Symbol X = fresh("x");
      const Expr *Init = genInt(Depth - 1);
      IntVars.push_back(X);
      const Expr *Body = genTop(Depth - 1);
      IntVars.pop_back();
      return Ctx.mkApp(Ctx.mkLam(X, Body), Init);
    }
    case 1: {
      Symbol F = fresh("f");
      Symbol N = fresh("n");
      // letrec f = lambda n. if n < 1 then <leaf> else <body with f(n-1)>
      IntVars.push_back(N);
      const Expr *Leaf = genInt(1);
      FunVars.push_back(F);
      const Expr *Rec = Ctx.mkApp(
          Ctx.mkVar(F), Ctx.mkPrim2(Prim2Op::Sub, Ctx.mkVar(N), Ctx.mkInt(1)));
      const Expr *Step = genIntAround(Rec, Depth - 1);
      IntVars.pop_back();
      const Expr *FunBody = Ctx.mkIf(
          Ctx.mkPrim2(Prim2Op::Lt, Ctx.mkVar(N), Ctx.mkInt(1)), Leaf,
          maybeAnnotate(Step));
      const Expr *Fun = Ctx.mkLam(N, FunBody);
      const Expr *Body = genTop(Depth - 1);
      FunVars.pop_back();
      return Ctx.mkLetrec(F, Fun, Body);
    }
    case 2: {
      Symbol L = fresh("l");
      const Expr *Init = genList(Depth - 1);
      ListVars.push_back(L);
      const Expr *Body = genTop(Depth - 1);
      ListVars.pop_back();
      return Ctx.mkApp(Ctx.mkLam(L, Body), Init);
    }
    default:
      return maybeAnnotate(genInt(Depth));
    }
  }

  /// An Int expression that uses \p Hole (a recursive call) exactly once.
  const Expr *genIntAround(const Expr *Hole, int Depth) {
    switch (pick(3)) {
    case 0:
      return Ctx.mkPrim2(Prim2Op::Add, Hole, genInt(Depth - 1));
    case 1:
      return Ctx.mkPrim2(flip() ? Prim2Op::Mul : Prim2Op::Sub,
                         genInt(Depth - 1), Hole);
    default:
      return Ctx.mkIf(genBool(Depth - 1), Hole, genInt(Depth - 1));
    }
  }

  const Expr *genInt(int Depth) {
    if (Depth <= 0 || flip(0.25)) {
      if (!IntVars.empty() && flip(0.5))
        return Ctx.mkVar(IntVars[pick((unsigned)IntVars.size())]);
      return Ctx.mkInt((int64_t)pick(20) - 5);
    }
    switch (pick(8)) {
    case 0:
      return Ctx.mkPrim2(Prim2Op::Add, genInt(Depth - 1), genInt(Depth - 1));
    case 1:
      return Ctx.mkPrim2(Prim2Op::Sub, genInt(Depth - 1), genInt(Depth - 1));
    case 2:
      return Ctx.mkPrim2(Prim2Op::Mul, genInt(Depth - 1), genInt(Depth - 1));
    case 3:
      // Division/modulo: may fail with division by zero — intentional.
      return Ctx.mkPrim2(flip() ? Prim2Op::Div : Prim2Op::Mod,
                         genInt(Depth - 1), genInt(Depth - 1));
    case 4:
      return Ctx.mkIf(genBool(Depth - 1), genInt(Depth - 1),
                      genInt(Depth - 1));
    case 5:
      if (!FunVars.empty()) {
        // Call a recursive function on a small argument.
        return Ctx.mkApp(Ctx.mkVar(FunVars[pick((unsigned)FunVars.size())]),
                         Ctx.mkInt(pick(6)));
      }
      return maybeAnnotate(genInt(Depth - 1));
    case 6:
      // hd of a list: may fail on [] — intentional.
      return Ctx.mkPrim1(Prim1Op::Hd, genList(Depth - 1));
    default: {
      // Immediately applied lambda.
      Symbol X = fresh("x");
      IntVars.push_back(X);
      const Expr *Body = genInt(Depth - 1);
      IntVars.pop_back();
      return Ctx.mkApp(Ctx.mkLam(X, Body), genInt(Depth - 1));
    }
    }
  }

  const Expr *genBool(int Depth) {
    if (Depth <= 0 || flip(0.3))
      return Ctx.mkBool(flip());
    switch (pick(4)) {
    case 0:
      return Ctx.mkPrim2(Prim2Op::Lt, genInt(Depth - 1), genInt(Depth - 1));
    case 1:
      return Ctx.mkPrim2(Prim2Op::Eq, genInt(Depth - 1), genInt(Depth - 1));
    case 2:
      return Ctx.mkPrim1(Prim1Op::Not, genBool(Depth - 1));
    default:
      return Ctx.mkPrim1(Prim1Op::Null, genList(Depth - 1));
    }
  }

  const Expr *genList(int Depth) {
    if (Depth <= 0 || flip(0.3)) {
      if (!ListVars.empty() && flip(0.5))
        return Ctx.mkVar(ListVars[pick((unsigned)ListVars.size())]);
      // Small literal list.
      const Expr *L = Ctx.mkNil();
      for (unsigned I = 0, N = pick(4); I < N; ++I)
        L = Ctx.mkPrim2(Prim2Op::Cons, Ctx.mkInt((int64_t)pick(10)), L);
      return L;
    }
    switch (pick(3)) {
    case 0:
      return Ctx.mkPrim2(Prim2Op::Cons, genInt(Depth - 1),
                         genList(Depth - 1));
    case 1:
      // tl: may fail on [] — intentional.
      return Ctx.mkPrim1(Prim1Op::Tl, genList(Depth - 1));
    default:
      return Ctx.mkIf(genBool(Depth - 1), genList(Depth - 1),
                      genList(Depth - 1));
    }
  }
};

/// Convenience: generate program #Seed into \p Ctx.
inline const Expr *genProgram(AstContext &Ctx, unsigned Seed) {
  return ProgramGen(Ctx, Seed).gen();
}

} // namespace monsem::testing

#endif // MONSEM_TESTS_RANDOMPROGRAM_H
