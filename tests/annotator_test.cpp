//===- tests/annotator_test.cpp - Automatic annotation insertion -----------===//

#include "syntax/Annotator.h"
#include "syntax/Parser.h"
#include "syntax/Printer.h"

#include <gtest/gtest.h>

#include <set>

using namespace monsem;

namespace {

struct Parsed {
  AstContext Ctx;
  DiagnosticSink Diags;
  const Expr *E = nullptr;
};

std::unique_ptr<Parsed> parse(std::string_view Src) {
  auto P = std::make_unique<Parsed>();
  P->E = parseProgram(P->Ctx, Src, P->Diags);
  EXPECT_NE(P->E, nullptr) << P->Diags.str();
  return P;
}

} // namespace

TEST(AnnotatorTest, ProfilerStyleBareLabels) {
  auto P = parse("letrec fac = lambda x. if x = 0 then 1 else "
                 "x * fac (x - 1) in fac 3");
  const Expr *Ann = annotateFunctionBodies(P->Ctx, P->E, {});
  auto Q = parse("letrec fac = lambda x. {fac}: if x = 0 then 1 else "
                 "x * fac (x - 1) in fac 3");
  EXPECT_TRUE(exprEquals(Ann, Q->E))
      << "got: " << printExpr(Ann) << "\nwant: " << printExpr(Q->E);
}

TEST(AnnotatorTest, TracerStyleFunctionHeaders) {
  auto P = parse("letrec mul = lambda x. lambda y. x * y in mul 2 3");
  AnnotateOptions Opts;
  Opts.WithParams = true;
  const Expr *Ann = annotateFunctionBodies(P->Ctx, P->E, {}, Opts);
  auto Q = parse("letrec mul = lambda x. lambda y. {mul(x, y)}: x * y "
                 "in mul 2 3");
  EXPECT_TRUE(exprEquals(Ann, Q->E))
      << "got: " << printExpr(Ann) << "\nwant: " << printExpr(Q->E);
}

TEST(AnnotatorTest, SelectsNamedFunctionsOnly) {
  auto P = parse("letrec f = lambda x. x in letrec g = lambda y. y in "
                 "f (g 1)");
  const Expr *Ann =
      annotateFunctionBodies(P->Ctx, P->E, {Symbol::intern("g")});
  std::vector<const Annotation *> Anns;
  collectAnnotations(Ann, Anns);
  ASSERT_EQ(Anns.size(), 1u);
  EXPECT_EQ(Anns[0]->Head.str(), "g");
}

TEST(AnnotatorTest, QualifierIsAttached) {
  auto P = parse("letrec f = lambda x. x in f 1");
  AnnotateOptions Opts;
  Opts.Qualifier = Symbol::intern("trace");
  Opts.WithParams = true;
  const Expr *Ann = annotateFunctionBodies(P->Ctx, P->E, {}, Opts);
  std::vector<const Annotation *> Anns;
  collectAnnotations(Ann, Anns);
  ASSERT_EQ(Anns.size(), 1u);
  EXPECT_EQ(Anns[0]->Qual.str(), "trace");
  EXPECT_EQ(Anns[0]->text(), "{trace:f(x)}");
}

TEST(AnnotatorTest, IsIdempotent) {
  auto P = parse("letrec f = lambda x. x in f 1");
  const Expr *Once = annotateFunctionBodies(P->Ctx, P->E, {});
  const Expr *Twice = annotateFunctionBodies(P->Ctx, Once, {});
  EXPECT_TRUE(exprEquals(Once, Twice));
}

TEST(AnnotatorTest, ValueBindingsGetDirectAnnotations) {
  // The demon example's convention: letrec l1 = {l1}:(...).
  auto P = parse("letrec l1 = [3, 1] in l1");
  const Expr *Ann = annotateFunctionBodies(P->Ctx, P->E, {});
  const auto *L = dyn_cast<LetrecExpr>(Ann);
  ASSERT_NE(L, nullptr);
  EXPECT_EQ(L->Bound->kind(), ExprKind::Annot);
}

TEST(AnnotatorTest, LabelProgramPoints) {
  auto P = parse("f (g 1) (h 2)");
  unsigned NumLabels = 0;
  const Expr *Ann =
      labelProgramPoints(P->Ctx, P->E, "p", Symbol(), &NumLabels);
  EXPECT_EQ(NumLabels, 4u); // f(g 1), (f ..)(h 2), g 1, h 2.
  std::vector<const Annotation *> Anns;
  collectAnnotations(Ann, Anns);
  EXPECT_EQ(Anns.size(), 4u);
  // Labels are unique.
  std::set<std::string> Heads;
  for (const Annotation *A : Anns)
    Heads.insert(std::string(A->Head.str()));
  EXPECT_EQ(Heads.size(), 4u);
}

TEST(AnnotatorTest, AnnotationTextForms) {
  Annotation A;
  A.Head = Symbol::intern("fac");
  EXPECT_EQ(A.text(), "{fac}");
  A.HasParams = true;
  A.Params = {Symbol::intern("x"), Symbol::intern("y")};
  EXPECT_EQ(A.text(), "{fac(x, y)}");
  A.Qual = Symbol::intern("trace");
  EXPECT_EQ(A.text(), "{trace:fac(x, y)}");
}
