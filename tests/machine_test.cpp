//===- tests/machine_test.cpp - CEK machine (standard semantics) -----------===//

#include "interp/Eval.h"

#include <gtest/gtest.h>

using namespace monsem;

namespace {

RunResult runSrc(std::string_view Src, RunOptions Opts = {}) {
  auto P = ParsedProgram::parse(Src);
  EXPECT_TRUE(P->ok()) << P->diags().str();
  if (!P->ok())
    return RunResult();
  return evaluate(P->root(), Opts);
}

int64_t evalInt(std::string_view Src) {
  RunResult R = runSrc(Src);
  EXPECT_TRUE(R.Ok) << R.Error << " for: " << Src;
  EXPECT_TRUE(R.IntValue.has_value()) << R.ValueText << " for: " << Src;
  return R.IntValue.value_or(INT64_MIN);
}

std::string evalText(std::string_view Src) {
  RunResult R = runSrc(Src);
  EXPECT_TRUE(R.Ok) << R.Error << " for: " << Src;
  return R.ValueText;
}

std::string evalError(std::string_view Src) {
  RunResult R = runSrc(Src);
  EXPECT_FALSE(R.Ok) << "expected failure for: " << Src;
  return R.Error;
}

} // namespace

TEST(MachineTest, Constants) {
  EXPECT_EQ(evalInt("42"), 42);
  EXPECT_EQ(evalText("true"), "True");
  EXPECT_EQ(evalText("[]"), "[]");
  EXPECT_EQ(evalText("\"hi\""), "hi");
}

TEST(MachineTest, Arithmetic) {
  EXPECT_EQ(evalInt("1 + 2 * 3"), 7);
  EXPECT_EQ(evalInt("(1 + 2) * 3"), 9);
  EXPECT_EQ(evalInt("10 / 3"), 3);
  EXPECT_EQ(evalInt("10 % 3"), 1);
  EXPECT_EQ(evalInt("-3 + 1"), -2);
  EXPECT_EQ(evalInt("min 3 (max 1 2)"), 2);
}

TEST(MachineTest, Booleans) {
  EXPECT_EQ(evalText("1 = 1"), "True");
  EXPECT_EQ(evalText("1 <> 1"), "False");
  EXPECT_EQ(evalText("1 < 2 and 2 < 3"), "True");
  EXPECT_EQ(evalText("1 > 2 or 2 > 3"), "False");
  EXPECT_EQ(evalText("not (1 = 2)"), "True");
}

TEST(MachineTest, ShortCircuit) {
  // The right operand must not be evaluated when the left decides.
  EXPECT_EQ(evalText("true or (1 / 0 = 0)"), "True");
  EXPECT_EQ(evalText("false and (1 / 0 = 0)"), "False");
}

TEST(MachineTest, Conditionals) {
  EXPECT_EQ(evalInt("if 1 < 2 then 10 else 20"), 10);
  EXPECT_EQ(evalInt("if 1 > 2 then 10 else 20"), 20);
  EXPECT_NE(evalError("if 1 then 2 else 3").find("boolean"),
            std::string::npos);
}

TEST(MachineTest, LambdaAndApplication) {
  EXPECT_EQ(evalInt("(lambda x. x + 1) 41"), 42);
  EXPECT_EQ(evalInt("(lambda x y. x - y) 10 4"), 6);
  EXPECT_EQ(evalInt("let add = lambda x y. x + y in add 1 2"), 3);
  EXPECT_EQ(evalInt("(lambda f. f (f 3)) (lambda x. x * 2)"), 12);
}

TEST(MachineTest, LexicalScope) {
  EXPECT_EQ(evalInt("let x = 1 in let f = lambda y. x + y in "
                    "let x = 100 in f 10"),
            11)
      << "closures must capture their definition environment";
}

TEST(MachineTest, Letrec) {
  EXPECT_EQ(evalInt("letrec fac = lambda x. if x = 0 then 1 else "
                    "x * fac (x - 1) in fac 5"),
            120);
  EXPECT_EQ(evalInt("letrec fib = lambda n. if n < 2 then n else "
                    "fib (n - 1) + fib (n - 2) in fib 10"),
            55);
}

TEST(MachineTest, LetrecValueBinding) {
  EXPECT_EQ(evalInt("letrec x = 1 + 2 in x"), 3);
  EXPECT_NE(evalError("letrec x = x + 1 in x").find("before initialization"),
            std::string::npos);
}

TEST(MachineTest, NestedLetrec) {
  EXPECT_EQ(
      evalInt("letrec even = lambda n. if n = 0 then 1 else "
              "letrec odd = lambda m. if m = 0 then 0 else even (m - 1) "
              "in odd (n - 1) in even 10"),
      1);
}

TEST(MachineTest, Lists) {
  EXPECT_EQ(evalText("[1, 2, 3]"), "[1, 2, 3]");
  EXPECT_EQ(evalInt("hd [7]"), 7);
  EXPECT_EQ(evalText("tl [1, 2]"), "[2]");
  EXPECT_EQ(evalText("1 : 2 : []"), "[1, 2]");
  EXPECT_EQ(evalText("null []"), "True");
  EXPECT_EQ(evalText("[1, 2] = [1, 2]"), "True");
  EXPECT_EQ(evalText("[1, 2] = [1]"), "False");
}

TEST(MachineTest, ListRecursion) {
  EXPECT_EQ(evalInt("letrec sum = lambda l. if l = [] then 0 else "
                    "hd l + sum (tl l) in sum [1, 2, 3, 4]"),
            10);
  EXPECT_EQ(evalText("letrec map = lambda f l. if l = [] then [] else "
                     "f (hd l) : map f (tl l) in map (lambda x. x * x) "
                     "[1, 2, 3]"),
            "[1, 4, 9]");
  EXPECT_EQ(evalText("letrec rev = lambda l acc. if l = [] then acc else "
                     "rev (tl l) (hd l : acc) in rev [1, 2, 3] []"),
            "[3, 2, 1]");
}

TEST(MachineTest, HigherOrderPrimitives) {
  EXPECT_EQ(evalText("letrec map = lambda f l. if l = [] then [] else "
                     "f (hd l) : map f (tl l) in map hd [[1], [2]]"),
            "[1, 2]");
  EXPECT_EQ(evalInt("let m = min in m 3 1"), 1);
  EXPECT_EQ(evalInt("(min 3) 1"), 1) << "partial prim application";
}

TEST(MachineTest, RuntimeErrors) {
  EXPECT_NE(evalError("x").find("unbound variable"), std::string::npos);
  EXPECT_NE(evalError("1 / 0").find("division by zero"), std::string::npos);
  EXPECT_NE(evalError("1 2").find("non-function"), std::string::npos);
  EXPECT_NE(evalError("hd []").find("hd"), std::string::npos);
  EXPECT_NE(evalError("tl 5").find("tl"), std::string::npos);
}

TEST(MachineTest, FunctionComparisonFails) {
  EXPECT_NE(evalError("(lambda x. x) = (lambda y. y)")
                .find("cannot compare functions"),
            std::string::npos);
}

TEST(MachineTest, FuelExhaustion) {
  auto P = ParsedProgram::parse("letrec loop = lambda x. loop x in loop 1");
  ASSERT_TRUE(P->ok());
  RunOptions Opts;
  Opts.MaxSteps = 10000;
  RunResult R = evaluate(P->root(), Opts);
  EXPECT_TRUE(R.FuelExhausted);
  EXPECT_FALSE(R.Ok);
}

TEST(MachineTest, DeepRecursionDoesNotOverflowCStack) {
  // 200k non-tail-recursive calls: the continuation lives in the arena.
  EXPECT_EQ(evalInt("letrec sum = lambda n. if n = 0 then 0 else "
                    "n + sum (n - 1) in sum 200000 - 20000100000"),
            0);
}

TEST(MachineTest, AnnotationsAreSkippedWithoutMonitors) {
  // Obliviousness (Definition 7.1).
  EXPECT_EQ(evalInt("{A}: 41 + ({B}: 1)"), 42);
  EXPECT_EQ(evalInt("letrec fac = lambda x. {fac(x)}: if x = 0 then 1 else "
                    "x * fac (x - 1) in fac 5"),
            120);
}

TEST(MachineTest, StringAnswerAlgebra) {
  auto P = ParsedProgram::parse("2 + 4");
  ASSERT_TRUE(P->ok());
  RunOptions Opts;
  Opts.Algebra = &StringAnswerAlgebra::instance();
  RunResult R = evaluate(P->root(), Opts);
  EXPECT_EQ(R.ValueText, "The result is: 6");
}

TEST(MachineTest, StepCountIsReported) {
  RunResult R = runSrc("1 + 2");
  EXPECT_GT(R.Steps, 0u);
  RunResult R2 = runSrc("letrec f = lambda x. if x = 0 then 0 else "
                        "f (x - 1) in f 100");
  EXPECT_GT(R2.Steps, R.Steps);
}

TEST(MachineTest, PaperApplicationOrder) {
  // Fig. 2 evaluates the operand before the operator: the operand's error
  // must win when both sides fail.
  RunResult R = runSrc("(hd []) (1 / 0)");
  ASSERT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("division by zero"), std::string::npos)
      << "operand (argument) must be evaluated first, got: " << R.Error;
}
