//===- tests/journal_test.cpp - Crash-safe run journal ---------------------===//
//
// The journal's durability contract: records are framed and checksummed
// individually, recovery trusts exactly the valid prefix, and a torn or
// corrupted tail costs at most the record being written.
//
//===----------------------------------------------------------------------===//

#include "support/Checkpoint.h"
#include "support/Journal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

using namespace monsem;

namespace {

std::string tempPath(const char *Name) {
  std::string P = ::testing::TempDir() + Name;
  std::remove(P.c_str());
  return P;
}

std::vector<uint8_t> readAll(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(In),
                              std::istreambuf_iterator<char>());
}

void writeAll(const std::string &Path, const std::vector<uint8_t> &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(reinterpret_cast<const char *>(Bytes.data()),
            static_cast<std::streamsize>(Bytes.size()));
}

} // namespace

TEST(JournalTest, EventRoundTrip) {
  std::string Path = tempPath("monsem_journal_rt.bin");
  {
    std::string Err;
    auto J = Journal::open(Path, Err);
    ASSERT_NE(J, nullptr) << Err;
    J->appendEvent(1, "pre {profile:f}");
    J->appendEvent(9, "post {profile:f} = 42");
    J->appendEvent(17, "pre {profile:g}");
  }
  JournalRecovery R = recoverJournal(Path);
  ASSERT_TRUE(R.Opened);
  EXPECT_EQ(R.TotalEvents, 3u);
  EXPECT_EQ(R.TornBytes, 0u);
  ASSERT_EQ(R.Tail.size(), 3u);
  EXPECT_EQ(R.Tail[0].Step, 1u);
  EXPECT_EQ(R.Tail[0].Text, "pre {profile:f}");
  EXPECT_EQ(R.Tail[2].Step, 17u);
  EXPECT_TRUE(R.LastCheckpoint.empty());
  std::remove(Path.c_str());
}

TEST(JournalTest, TailKeepsOnlyTheLastN) {
  std::string Path = tempPath("monsem_journal_tail.bin");
  {
    std::string Err;
    auto J = Journal::open(Path, Err);
    ASSERT_NE(J, nullptr) << Err;
    for (unsigned I = 0; I < 40; ++I)
      J->appendEvent(I, "event " + std::to_string(I));
  }
  JournalRecovery R = recoverJournal(Path, /*TailLimit=*/5);
  EXPECT_EQ(R.TotalEvents, 40u);
  ASSERT_EQ(R.Tail.size(), 5u);
  EXPECT_EQ(R.Tail.front().Text, "event 35");
  EXPECT_EQ(R.Tail.back().Text, "event 39");
  std::remove(Path.c_str());
}

TEST(JournalTest, CheckpointRecovery) {
  std::string Path = tempPath("monsem_journal_ck.bin");
  std::vector<uint8_t> CkBytes = {0xde, 0xad, 0xbe, 0xef, 0x01};
  std::vector<uint8_t> CkBytes2 = {0xca, 0xfe};
  {
    std::string Err;
    auto J = Journal::open(Path, Err);
    ASSERT_NE(J, nullptr) << Err;
    J->appendEvent(1, "a");
    J->appendCheckpoint(CkBytes);
    J->appendEvent(2, "b");
    J->appendCheckpoint(CkBytes2);
    J->appendEvent(3, "c");
    J->appendEvent(4, "d");
  }
  JournalRecovery R = recoverJournal(Path);
  EXPECT_EQ(R.TotalEvents, 4u);
  EXPECT_EQ(R.LastCheckpoint, CkBytes2); // The most recent one wins.
  EXPECT_EQ(R.EventsSinceCheckpoint, 2u);
  std::remove(Path.c_str());
}

TEST(JournalTest, TornTailIsDiscardedNotTrusted) {
  std::string Path = tempPath("monsem_journal_torn.bin");
  {
    std::string Err;
    auto J = Journal::open(Path, Err);
    ASSERT_NE(J, nullptr) << Err;
    J->appendEvent(1, "kept");
    J->appendEvent(2, "also kept");
  }
  // Simulate a crash mid-append: chop the last record in half.
  std::vector<uint8_t> Bytes = readAll(Path);
  size_t Full = Bytes.size();
  Bytes.resize(Full - 7);
  writeAll(Path, Bytes);

  JournalRecovery R = recoverJournal(Path);
  ASSERT_TRUE(R.Opened);
  EXPECT_EQ(R.TotalEvents, 1u);
  ASSERT_EQ(R.Tail.size(), 1u);
  EXPECT_EQ(R.Tail[0].Text, "kept");
  EXPECT_GT(R.TornBytes, 0u);
  std::remove(Path.c_str());
}

TEST(JournalTest, CorruptedRecordStopsRecoveryAtValidPrefix) {
  std::string Path = tempPath("monsem_journal_corrupt.bin");
  {
    std::string Err;
    auto J = Journal::open(Path, Err);
    ASSERT_NE(J, nullptr) << Err;
    J->appendEvent(1, "good");
    J->appendEvent(2, "about to be corrupted");
    J->appendEvent(3, "unreachable after corruption");
  }
  std::vector<uint8_t> Bytes = readAll(Path);
  // Flip a byte inside the second record's payload.
  size_t FirstLen = Bytes.size() / 3;
  Bytes[FirstLen + 10] ^= 0xff;
  writeAll(Path, Bytes);

  JournalRecovery R = recoverJournal(Path);
  ASSERT_TRUE(R.Opened);
  EXPECT_EQ(R.TotalEvents, 1u);
  EXPECT_GT(R.TornBytes, 0u);
  std::remove(Path.c_str());
}

TEST(JournalTest, MissingFileReportsUnopened) {
  JournalRecovery R = recoverJournal(tempPath("monsem_journal_absent.bin"));
  EXPECT_FALSE(R.Opened);
  EXPECT_EQ(R.TotalEvents, 0u);
}

TEST(JournalTest, AppendsAreDurablePerRecord) {
  // Without closing the journal, a concurrent reader already sees every
  // completed append (each one is flushed).
  std::string Path = tempPath("monsem_journal_flush.bin");
  std::string Err;
  auto J = Journal::open(Path, Err);
  ASSERT_NE(J, nullptr) << Err;
  J->appendEvent(5, "flushed");
  JournalRecovery R = recoverJournal(Path);
  EXPECT_EQ(R.TotalEvents, 1u);
  ASSERT_EQ(R.Tail.size(), 1u);
  EXPECT_EQ(R.Tail[0].Step, 5u);
  J.reset();
  std::remove(Path.c_str());
}

TEST(JournalTest, OpenTruncatesTheTornTailBeforeAppending) {
  std::string Path = tempPath("monsem_journal_reopen.bin");
  {
    std::string Err;
    auto J = Journal::open(Path, Err);
    ASSERT_NE(J, nullptr) << Err;
    J->appendEvent(1, "kept");
    J->appendEvent(2, "torn away");
  }
  // Crash mid-append: the second record is half-written.
  std::vector<uint8_t> Bytes = readAll(Path);
  size_t Full = Bytes.size();
  Bytes.resize(Full - 7);
  writeAll(Path, Bytes);

  // Reopening repairs the file in place: the torn bytes are truncated so
  // the next append starts at a record boundary, not inside garbage.
  {
    std::string Err;
    auto J = Journal::open(Path, Err);
    ASSERT_NE(J, nullptr) << Err;
    EXPECT_LT(readAll(Path).size(), Full - 7); // Torn tail gone already.
    J->appendEvent(3, "after repair");
  }
  JournalRecovery R = recoverJournal(Path);
  ASSERT_TRUE(R.Opened);
  EXPECT_EQ(R.TornBytes, 0u); // Fully healed, not merely tolerated.
  EXPECT_EQ(R.TotalEvents, 2u);
  ASSERT_EQ(R.Tail.size(), 2u);
  EXPECT_EQ(R.Tail[0].Text, "kept");
  EXPECT_EQ(R.Tail[1].Text, "after repair");
  std::remove(Path.c_str());
}

TEST(JournalTest, FirstAppendFailureIsSticky) {
  // The first I/O failure is what a diagnostic should surface, even if
  // later appends fail differently; failed() latches it.
  std::string Path = tempPath("monsem_journal_sticky.bin");
  std::string Err;
  JournalOptions Opts;
  Opts.MaxRetries = 0;
  auto J = Journal::open(Path, Err, Opts);
  ASSERT_NE(J, nullptr) << Err;
  EXPECT_FALSE(J->failed());
  ASSERT_TRUE(J->appendEvent(1, "fine"));
  EXPECT_FALSE(J->failed());
  J.reset();
  std::remove(Path.c_str());
}
