//===- tests/vm_register_test.cpp - Register tier differential -------------===//
//
// The register tier is a pure implementation refinement of the stack VM:
// lowering is 1:1 per instruction (same block, same pc, same cost), so a
// register run must be observationally identical to the fused stack run —
// same answers, same step counts, same probe event streams, same final
// monitor states — and checkpoints must be portable across tiers in both
// directions. These tests pin that down differentially (register vs. fused
// stack VM vs. CEK machine, monitored and unmonitored), plus golden
// disassembly listings for both encodings and the structural invariants
// the lowering pass must respect.
//
//===----------------------------------------------------------------------===//

#include "compile/AotEmit.h"
#include "compile/Compiler.h"
#include "compile/VM.h"
#include "interp/Eval.h"
#include "interp/Machine.h"
#include "monitors/Profiler.h"
#include "syntax/Printer.h"

#include "RandomProgram.h"

#include <gtest/gtest.h>

using namespace monsem;
using monsem::testing::genProgram;

namespace {

constexpr uint64_t kBigBudget = 4'000'000;

std::unique_ptr<ParsedProgram> parseOk(std::string_view Src) {
  auto P = ParsedProgram::parse(Src);
  EXPECT_TRUE(P->ok()) << P->diags().str();
  return P;
}

std::string statesOf(const RunResult &R) {
  std::string Out;
  for (const auto &S : R.FinalStates)
    Out += S->str() + ";";
  return Out;
}

/// One probe event as a monitor would see it: which hook fired, at which
/// step, with which rendered payload. Byte-identical streams between the
/// register and stack tiers are the probe-convention acceptance bar.
struct Event {
  bool Pre;
  uint64_t Step;
  std::string Text;

  bool operator==(const Event &O) const {
    return Pre == O.Pre && Step == O.Step && Text == O.Text;
  }
};

std::string describeEvents(const std::vector<Event> &Es) {
  std::string Out;
  for (const Event &E : Es)
    Out += (E.Pre ? "pre@" : "post@") + std::to_string(E.Step) + " " +
           E.Text + "\n";
  return Out;
}

/// Decorator mirroring JournalingHooks, but into a vector instead of a
/// file: records exactly what the journal would, then forwards.
class RecordingHooks : public MonitorHooks {
public:
  RecordingHooks(MonitorHooks &Inner, std::vector<Event> &Events)
      : Inner(Inner), Events(Events) {}

  void pre(const Annotation &Ann, const Expr &E, EnvView Env,
           uint64_t StepIndex, uint64_t AllocatedBytes) override {
    Events.push_back({true, StepIndex, Ann.text()});
    Inner.pre(Ann, E, Env, StepIndex, AllocatedBytes);
  }

  void post(const Annotation &Ann, const Expr &E, EnvView Env, Value Result,
            uint64_t StepIndex, uint64_t AllocatedBytes) override {
    Events.push_back(
        {false, StepIndex, Ann.text() + " = " + toDisplayString(Result)});
    Inner.post(Ann, E, Env, Result, StepIndex, AllocatedBytes);
  }

  void saveMonitorSection(Serializer &S) const override {
    Inner.saveMonitorSection(S);
  }
  void loadMonitorSection(Deserializer &D) override {
    Inner.loadMonitorSection(D);
  }

private:
  MonitorHooks &Inner;
  std::vector<Event> &Events;
};

enum class Tier { Fused, Reg, Aot };

/// Run a program through the fused stack VM, the register tier, or the
/// native AOT tier under one cascade, optionally recording the probe
/// event stream. Tier::Aot requires aotAvailable() — callers skip first.
RunResult runTier(Tier T, const Cascade &C, const Expr *Program,
                  RunOptions Opts, std::vector<Event> *Events = nullptr) {
  DiagnosticSink Diags;
  if (!C.empty() && !C.validateFor(Program, Diags)) {
    RunResult R;
    R.Error = Diags.str();
    return R;
  }
  CompileOptions CO;
  CO.Instrument = !C.empty();
  std::unique_ptr<CompiledProgram> CP = compileProgram(Program, Diags, CO);
  if (!CP) {
    RunResult R;
    R.Error = Diags.str();
    return R;
  }
  std::unique_ptr<RegProgram> RP;
  std::shared_ptr<const AotLibrary> Lib;
  if (T != Tier::Fused) {
    RP = lowerToRegisters(*CP);
    EXPECT_NE(RP, nullptr) << "register lowering failed";
    if (!RP) {
      RunResult R;
      R.Error = "lowering failed";
      return R;
    }
  }
  if (T == Tier::Aot) {
    std::string Why;
    Lib = aotLoad(*RP, /*CacheDir=*/"", &Why);
    EXPECT_NE(Lib, nullptr) << "aotLoad failed: " << Why;
    if (!Lib) {
      RunResult R;
      R.Error = "aot load failed: " + Why;
      return R;
    }
  }
  auto Run = [&](MonitorHooks *H) {
    if (Lib)
      return runAotProgram(*RP, *Lib, H, Opts);
    return RP ? runRegisterProgram(*RP, H, Opts) : runCompiled(*CP, H, Opts);
  };
  if (C.empty())
    return Run(nullptr);
  RuntimeCascade RC(C, Opts.MonitorFaultPolicy, Opts.MonitorRetryBudget);
  std::unique_ptr<RecordingHooks> RH;
  MonitorHooks *Hooks = &RC;
  if (Events) {
    RH = std::make_unique<RecordingHooks>(RC, *Events);
    Hooks = RH.get();
  }
  RunResult R = Run(Hooks);
  R.FinalStates = RC.takeStates();
  R.MonitorFaults = RC.takeFaults();
  return R;
}

/// CEK machine run with the same event recording, for text-level stream
/// comparison (CEK step indices differ from the VM's cost accounting, so
/// only the hook/text sequence is comparable).
RunResult runCEKRecorded(const Cascade &C, const Expr *Program,
                         RunOptions Opts, std::vector<Event> &Events) {
  DiagnosticSink Diags;
  if (!C.validateFor(Program, Diags)) {
    RunResult R;
    R.Error = Diags.str();
    return R;
  }
  RuntimeCascade RC(C, Opts.MonitorFaultPolicy, Opts.MonitorRetryBudget);
  RecordingHooks RH(RC, Events);
  DynamicMonitorPolicy Policy{&RH};
  MonitoredMachine M(Program, Opts, Policy);
  RunResult R = M.run();
  R.FinalStates = RC.takeStates();
  R.MonitorFaults = RC.takeFaults();
  return R;
}

std::string textsOf(const std::vector<Event> &Es) {
  std::string Out;
  for (const Event &E : Es)
    Out += (E.Pre ? "pre " : "post ") + E.Text + "\n";
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Golden disassembly round-trips: both encodings, pinned byte-for-byte.
//===----------------------------------------------------------------------===//

TEST(RegisterDisasmTest, GoldenFibListings) {
  auto P = parseOk("letrec fib = lambda n. if n < 2 then n else "
                   "fib (n - 1) + fib (n - 2) in fib 10");
  DiagnosticSink D;
  auto CP = compileProgram(P->root(), D);
  ASSERT_NE(CP, nullptr);
  EXPECT_EQ(CP->disassemble(),
            "block 0 (<main>):\n"
            "  0: pushrec 0\n"
            "  1: closure 1\n"
            "  2: patchrec\n"
            "  3: const 10\n"
            "  4: vartailcall 0\n"
            "  5: halt\n"
            "block 1 (lambda n):\n"
            "  0: varconstprim2 0 2 <\n"
            "  1: jfalse 4\n"
            "  2: var 0\n"
            "  3: jump 9\n"
            "  4: varconstprim2 0 1 -\n"
            "  5: varcall 1\n"
            "  6: varconstprim2 0 2 -\n"
            "  7: varcall 1\n"
            "  8: prim2 +\n"
            "  9: ret\n");
  auto RP = lowerToRegisters(*CP);
  ASSERT_NE(RP, nullptr);
  // The fib body has no closure creation and no probes, so it lowers as a
  // leaf block: the parameter lives in r0 with no environment node at all,
  // and recursive references shift down one environment level.
  EXPECT_EQ(RP->disassemble(),
            "block 0 (<main>) regs=1:\n"
            "  0: rpushrec 0\n"
            "  1: rclosure r0 = block 1\n"
            "  2: rpatchrec r0\n"
            "  3: rconst r0 = 10\n"
            "  4: rvartailcall env[0](r0)\n"
            "  5: rhalt r0\n"
            "block 1 (lambda n) leaf regs=3:\n"
            "  0: rvarconstprim2 r1 = param < 2\n"
            "  1: rjfalse r1 -> 4\n"
            "  2: rvar r1 = param\n"
            "  3: rjump 9\n"
            "  4: rvarconstprim2 r1 = param - 1\n"
            "  5: rvarcall r1 = env[0](r1)\n"
            "  6: rvarconstprim2 r2 = param - 2\n"
            "  7: rvarcall r2 = env[0](r2)\n"
            "  8: rprim2 r1 = r1 + r2\n"
            "  9: rret r1\n");
}

TEST(RegisterDisasmTest, GoldenProbeListing) {
  // A probe in the body forces the non-leaf convention: the block keeps
  // the full environment chain (param at env[0]) so MonPre/MonPost present
  // the paper-exact environment view, and MonPost names the register
  // holding the observed result.
  auto P = parseOk("(lambda x. x + ({A}: x)) 3");
  DiagnosticSink D;
  auto CP = compileProgram(P->root(), D);
  ASSERT_NE(CP, nullptr);
  auto RP = lowerToRegisters(*CP);
  ASSERT_NE(RP, nullptr);
  EXPECT_EQ(RP->disassemble(),
            "block 0 (<main>) regs=2:\n"
            "  0: rconst r0 = 3\n"
            "  1: rclosure r1 = block 1\n"
            "  2: rtailcall r1(r0)\n"
            "  3: rhalt r0\n"
            "block 1 (lambda x) regs=2:\n"
            "  0: rvar r0 = env[0]\n"
            "  1: rmonpre {A}\n"
            "  2: rvar r1 = env[0]\n"
            "  3: rmonpost {A} r1\n"
            "  4: rprim2 r0 = r0 + r1\n"
            "  5: rret r0\n");
}

//===----------------------------------------------------------------------===//
// Structural invariants of the lowering pass.
//===----------------------------------------------------------------------===//

TEST(RegisterLoweringTest, LoweringIsOneToOne) {
  // Step-count identity, governor-pause identity, and cross-tier
  // checkpoint portability all rest on the same invariant: every stack
  // instruction lowers to exactly one register instruction at the same
  // (block, pc) with the same cost.
  for (unsigned Seed = 0; Seed < 20; ++Seed) {
    AstContext Ctx;
    const Expr *Prog = genProgram(Ctx, Seed);
    DiagnosticSink D;
    CompileOptions CO;
    CO.Instrument = true;
    auto CP = compileProgram(Prog, D, CO);
    ASSERT_NE(CP, nullptr);
    auto RP = lowerToRegisters(*CP);
    ASSERT_NE(RP, nullptr) << printExpr(Prog);
    ASSERT_EQ(RP->Blocks.size(), CP->Blocks.size());
    for (size_t B = 0; B < CP->Blocks.size(); ++B) {
      const CodeBlock &SB = CP->Blocks[B];
      const RegBlock &RB = RP->Blocks[B];
      ASSERT_EQ(RB.Code.size(), SB.Code.size()) << printExpr(Prog);
      for (size_t Pc = 0; Pc < SB.Code.size(); ++Pc) {
        EXPECT_EQ(static_cast<unsigned>(RB.Code[Pc].Code),
                  static_cast<unsigned>(SB.Code[Pc].Code));
        EXPECT_EQ(RB.Code[Pc].Cost, SB.Code[Pc].Cost);
      }
    }
  }
}

TEST(RegisterLoweringTest, LeafCallsSkipEnvAllocation) {
  auto P = parseOk("letrec fib = lambda n. if n < 2 then n else "
                   "fib (n - 1) + fib (n - 2) in fib 12");
  Cascade Empty;
  RunOptions Opts;
  RunResult F = runTier(Tier::Fused, Empty, P->root(), Opts);
  RunResult R = runTier(Tier::Reg, Empty, P->root(), Opts);
  ASSERT_TRUE(F.Ok && R.Ok) << F.Error << R.Error;
  EXPECT_EQ(R.ValueText, F.ValueText);
  EXPECT_EQ(R.Steps, F.Steps);
  // Leaf frames never materialize an EnvNode, so the register run's arena
  // high-water mark is far below the stack tier's one-node-per-call.
  EXPECT_LT(R.ArenaBytes, F.ArenaBytes);
}

TEST(RegisterLoweringTest, SelfLoopsRunInConstantArena) {
  auto Short = parseOk("letrec loop = lambda n. if n = 0 then 7 else "
                       "loop (n - 1) in loop 1000");
  auto Long = parseOk("letrec loop = lambda n. if n = 0 then 7 else "
                      "loop (n - 1) in loop 100000");
  Cascade Empty;
  RunOptions Opts;
  RunResult RS = runTier(Tier::Reg, Empty, Short->root(), Opts);
  RunResult RL = runTier(Tier::Reg, Empty, Long->root(), Opts);
  ASSERT_TRUE(RS.Ok && RL.Ok) << RS.Error << RL.Error;
  EXPECT_EQ(RL.IntValue, 7);
  EXPECT_EQ(RS.ArenaBytes, RL.ArenaBytes);
}

TEST(RegisterLoweringTest, LazyStrategyIsRejected) {
  auto P = parseOk("1 + 2");
  RunResult R = evaluate(kVMReg & kByName, P->root());
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("kVMReg"), std::string::npos) << R.Error;

  RunResult Reg = evaluate(kVMReg, P->root());
  RunResult VM = evaluate(kVM, P->root());
  ASSERT_TRUE(Reg.Ok && VM.Ok) << Reg.Error << VM.Error;
  EXPECT_EQ(Reg.ValueText, VM.ValueText);
  EXPECT_EQ(Reg.Steps, VM.Steps);
}

//===----------------------------------------------------------------------===//
// Differential corpus: register tier (both dispatchers) vs. fused stack VM
// vs. the CEK machine over generated programs.
//===----------------------------------------------------------------------===//

class VMRegisterDifferentialTest : public ::testing::TestWithParam<unsigned> {
};

TEST_P(VMRegisterDifferentialTest, RegisterAgreesWithStackAndMachine) {
  AstContext Ctx;
  const Expr *Prog = genProgram(Ctx, GetParam());
  RunOptions Opts;
  Opts.MaxSteps = 1000000;
  RunResult Interp = evaluate(Prog, Opts);
  Cascade Empty;

  RunResult Base = runTier(Tier::Fused, Empty, Prog, Opts);
  EXPECT_TRUE(Interp.sameOutcome(Base)) << printExpr(Prog);
  RunResult Reg;
  for (bool Threaded : {false, true}) {
    RunOptions O = Opts;
    O.VMThreaded = Threaded;
    RunResult R = runTier(Tier::Reg, Empty, Prog, O);
    EXPECT_TRUE(Base.sameOutcome(R))
        << printExpr(Prog) << "\nthreaded=" << Threaded
        << "\nstack: " << (Base.Ok ? Base.ValueText : Base.Error)
        << "\nreg:   " << (R.Ok ? R.ValueText : R.Error);
    if (Base.Ok && R.Ok) {
      EXPECT_EQ(Base.Steps, R.Steps) << printExpr(Prog);
      // Leaf elision only removes allocations; it never adds any.
      EXPECT_LE(R.ArenaBytes, Base.ArenaBytes) << printExpr(Prog);
    }
    if (!Threaded)
      Reg = std::move(R);
  }
  // The native AOT tier runs the same register program, so it must match
  // the register interpreter exactly — answer, step count, and even the
  // arena footprint (the native fast paths allocate iff the interpreter's
  // fast paths would).
  if (aotAvailable()) {
    RunResult A = runTier(Tier::Aot, Empty, Prog, Opts);
    EXPECT_TRUE(Base.sameOutcome(A))
        << printExpr(Prog)
        << "\nstack: " << (Base.Ok ? Base.ValueText : Base.Error)
        << "\naot:   " << (A.Ok ? A.ValueText : A.Error);
    if (Reg.Ok && A.Ok) {
      EXPECT_EQ(Reg.Steps, A.Steps) << printExpr(Prog);
      EXPECT_EQ(Reg.ArenaBytes, A.ArenaBytes) << printExpr(Prog);
    }
  }
}

TEST_P(VMRegisterDifferentialTest, MonitoredStreamsAreIdentical) {
  AstContext Ctx;
  const Expr *Prog = genProgram(Ctx, GetParam());
  RunOptions Opts;
  Opts.MaxSteps = 1000000;

  CountingProfiler CountAB;
  CountingProfiler CountM("m0", "m1");
  Cascade Single;
  Single.use(CountAB);
  Cascade Pair;
  Pair.use(CountAB);
  Pair.use(CountM);

  for (const Cascade *C : {&Single, &Pair}) {
    std::vector<Event> FusedEvents, RegEvents, CEKEvents;
    RunResult F = runTier(Tier::Fused, *C, Prog, Opts, &FusedEvents);
    RunResult R = runTier(Tier::Reg, *C, Prog, Opts, &RegEvents);
    RunResult Interp = runCEKRecorded(*C, Prog, Opts, CEKEvents);
    EXPECT_TRUE(F.sameOutcome(R)) << printExpr(Prog);
    EXPECT_TRUE(Interp.sameOutcome(R)) << printExpr(Prog);
    if (Interp.Ok && F.Ok && R.Ok) {
      EXPECT_EQ(statesOf(R), statesOf(F)) << printExpr(Prog);
      EXPECT_EQ(statesOf(R), statesOf(Interp)) << printExpr(Prog);
      EXPECT_EQ(R.Steps, F.Steps) << printExpr(Prog);
      // Probe convention: the register tier emits the byte-identical
      // event stream — same steps, same rendered payloads.
      EXPECT_TRUE(RegEvents == FusedEvents)
          << printExpr(Prog) << "\nfused:\n" << describeEvents(FusedEvents)
          << "reg:\n" << describeEvents(RegEvents);
      // Against the CEK machine only the hook/text sequence is comparable
      // (step indices follow each machine's own cost accounting).
      EXPECT_EQ(textsOf(RegEvents), textsOf(CEKEvents)) << printExpr(Prog);
    }
    // The native tier deopts to the register interpreter around every
    // probe window, so the monitored stream — steps, payloads, final
    // states — must be byte-identical to the pure register run.
    if (aotAvailable()) {
      std::vector<Event> AotEvents;
      RunResult A = runTier(Tier::Aot, *C, Prog, Opts, &AotEvents);
      EXPECT_TRUE(R.sameOutcome(A)) << printExpr(Prog);
      if (R.Ok && A.Ok) {
        EXPECT_EQ(statesOf(A), statesOf(R)) << printExpr(Prog);
        EXPECT_EQ(A.Steps, R.Steps) << printExpr(Prog);
        EXPECT_TRUE(AotEvents == RegEvents)
            << printExpr(Prog) << "\nreg:\n" << describeEvents(RegEvents)
            << "aot:\n" << describeEvents(AotEvents);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VMRegisterDifferentialTest,
                         ::testing::Range(0u, 60u));

//===----------------------------------------------------------------------===//
// Cross-tier checkpoint portability: interrupt under one tier, resume
// under the other, and compare against the uninterrupted run.
//===----------------------------------------------------------------------===//

namespace {

struct Final {
  Outcome St = Outcome::Error;
  std::string ValueText;
  std::string Error;
  uint64_t Steps = 0;
  std::vector<std::string> States;

  bool operator==(const Final &O) const {
    return St == O.St && ValueText == O.ValueText && Error == O.Error &&
           Steps == O.Steps && States == O.States;
  }
};

Final finalOf(const RunResult &R) {
  Final F;
  F.St = R.St;
  F.ValueText = R.ValueText;
  F.Error = R.Error;
  F.Steps = R.Steps;
  for (const auto &S : R.FinalStates)
    F.States.push_back(S->str());
  return F;
}

std::string describe(const Final &F) {
  std::string Out = std::string(outcomeName(F.St)) + " value='" +
                    F.ValueText + "' error='" + F.Error +
                    "' steps=" + std::to_string(F.Steps);
  for (const std::string &S : F.States)
    Out += " state=" + S;
  return Out;
}

const char *tierName(Backend B) {
  switch (B) {
  case Backend::VM:
    return "vm";
  case Backend::VMRegister:
    return "vm-reg";
  case Backend::VMAot:
    return "vm-aot";
  default:
    return "?";
  }
}

/// checkpoint_test's differential core, generalized to interrupt under
/// `From` and resume under `To`. All three VM tiers (stack, register,
/// native AOT) share the CheckpointBackend::VM format and the stack-listing
/// fingerprint, so a checkpoint written by any must resume on the others
/// with identical observables. For vm-aot this doubles as the
/// deopt-at-checkpoint test: native code yields back to the register
/// interpreter before every governor pause, so the fuel stop that emits
/// the checkpoint always fires from interpreted code at an exact
/// transition boundary.
void checkCrossTier(unsigned Seed, Backend From, Backend To, bool Monitored) {
  CallProfiler Prof;
  auto modeFor = [&](Backend B) {
    EvalMode M = kStrict & BackendTag{B};
    if (Monitored)
      M = M & Prof;
    return M;
  };

  AstContext C1;
  const Expr *P1 = genProgram(C1, Seed);
  RunResult Ref = evaluate(modeFor(To) & maxSteps(kBigBudget), P1);
  if (Ref.stoppedByGovernor())
    return;
  Final FRef = finalOf(Ref);
  if (FRef.Steps < 2)
    return;

  uint64_t K = 1 + (Seed * 7919u) % (FRef.Steps - 1);

  Checkpoint CK;
  {
    AstContext C2;
    const Expr *P2 = genProgram(C2, Seed);
    RunResult R =
        evaluate(modeFor(From) & maxSteps(K) &
                     checkpointInto([&](const Checkpoint &C) { CK = C; }),
                 P2);
    ASSERT_EQ(R.St, Outcome::FuelExhausted)
        << "seed " << Seed << " K=" << K << ": " << R.Error;
    ASSERT_TRUE(CK.valid()) << "seed " << Seed;
  }

  {
    AstContext C3;
    const Expr *P3 = genProgram(C3, Seed);
    RunResult R =
        evaluate(modeFor(To) & maxSteps(kBigBudget) & resumeFrom(CK), P3);
    Final FRes = finalOf(R);
    EXPECT_TRUE(FRes == FRef)
        << "seed " << Seed << " K=" << K << " " << tierName(From) << "->"
        << tierName(To) << "\n  reference: " << describe(FRef)
        << "\n  resumed:   " << describe(FRes);
  }
}

} // namespace

TEST(RegisterCheckpointTest, StackToRegisterUnmonitored) {
  for (unsigned Seed = 0; Seed < 25; ++Seed)
    checkCrossTier(Seed, Backend::VM, Backend::VMRegister, false);
}

TEST(RegisterCheckpointTest, RegisterToStackUnmonitored) {
  for (unsigned Seed = 0; Seed < 25; ++Seed)
    checkCrossTier(Seed, Backend::VMRegister, Backend::VM, false);
}

TEST(RegisterCheckpointTest, StackToRegisterMonitored) {
  for (unsigned Seed = 0; Seed < 25; ++Seed)
    checkCrossTier(Seed, Backend::VM, Backend::VMRegister, true);
}

TEST(RegisterCheckpointTest, RegisterToStackMonitored) {
  for (unsigned Seed = 0; Seed < 25; ++Seed)
    checkCrossTier(Seed, Backend::VMRegister, Backend::VM, true);
}

TEST(RegisterCheckpointTest, RegisterResumesItself) {
  for (unsigned Seed = 0; Seed < 25; ++Seed)
    checkCrossTier(Seed, Backend::VMRegister, Backend::VMRegister, true);
}

// vm-aot checkpoint portability: a checkpoint cut while the native tier is
// driving must resume under the pure interpreters (and vice versa) with
// identical observables, because the native tier deopts to the register
// interpreter at the exact (block, pc) the governor pauses on.

TEST(RegisterCheckpointTest, AotToStackUnmonitored) {
  if (!aotAvailable())
    GTEST_SKIP() << "no C compiler; native tier degrades to vm-reg";
  for (unsigned Seed = 0; Seed < 25; ++Seed)
    checkCrossTier(Seed, Backend::VMAot, Backend::VM, false);
}

TEST(RegisterCheckpointTest, StackToAotMonitored) {
  if (!aotAvailable())
    GTEST_SKIP() << "no C compiler; native tier degrades to vm-reg";
  for (unsigned Seed = 0; Seed < 25; ++Seed)
    checkCrossTier(Seed, Backend::VM, Backend::VMAot, true);
}

TEST(RegisterCheckpointTest, AotToRegisterMonitored) {
  if (!aotAvailable())
    GTEST_SKIP() << "no C compiler; native tier degrades to vm-reg";
  for (unsigned Seed = 0; Seed < 25; ++Seed)
    checkCrossTier(Seed, Backend::VMAot, Backend::VMRegister, true);
}

TEST(RegisterCheckpointTest, RegisterToAotMonitored) {
  if (!aotAvailable())
    GTEST_SKIP() << "no C compiler; native tier degrades to vm-reg";
  for (unsigned Seed = 0; Seed < 25; ++Seed)
    checkCrossTier(Seed, Backend::VMRegister, Backend::VMAot, true);
}

TEST(RegisterCheckpointTest, AotResumesItself) {
  if (!aotAvailable())
    GTEST_SKIP() << "no C compiler; native tier degrades to vm-reg";
  for (unsigned Seed = 0; Seed < 25; ++Seed)
    checkCrossTier(Seed, Backend::VMAot, Backend::VMAot, true);
}

TEST(RegisterCheckpointTest, LastStepCheckpointHasNoFrames) {
  // Interrupting on the final Halt catches the machine after the sentinel
  // frame was popped: the checkpoint legitimately carries zero call frames
  // and the resumed run halts immediately. Exercise every tier pairing.
  auto Src = "letrec fib = lambda n. if n < 2 then n else "
             "fib (n - 1) + fib (n - 2) in fib 14";
  std::vector<Backend> Tiers = {Backend::VM, Backend::VMRegister};
  if (aotAvailable())
    Tiers.push_back(Backend::VMAot);
  for (Backend From : Tiers) {
    for (Backend To : Tiers) {
      auto P1 = parseOk(Src);
      RunResult Ref =
          evaluate(kStrict & BackendTag{To} & maxSteps(kBigBudget),
                   P1->root());
      ASSERT_TRUE(Ref.Ok) << Ref.Error;

      Checkpoint CK;
      auto P2 = parseOk(Src);
      RunResult Cut =
          evaluate(kStrict & BackendTag{From} & maxSteps(Ref.Steps - 1) &
                       checkpointInto([&](const Checkpoint &C) { CK = C; }),
                   P2->root());
      ASSERT_EQ(Cut.St, Outcome::FuelExhausted) << Cut.Error;
      ASSERT_TRUE(CK.valid());

      auto P3 = parseOk(Src);
      RunResult R = evaluate(kStrict & BackendTag{To} &
                                 maxSteps(kBigBudget) & resumeFrom(CK),
                             P3->root());
      ASSERT_TRUE(R.Ok) << R.Error;
      EXPECT_EQ(R.ValueText, Ref.ValueText);
      EXPECT_EQ(R.Steps, Ref.Steps);
    }
  }
}
