//===- tests/imp_expr_monitor_test.cpp - Cross-level monitoring ------------===//
//
// The imperative module with *both* derivations active: command-level
// monitors (ImpCascade) and an L_lambda cascade over the annotations
// inside the commands' expressions — the two monitoring semantics
// composed across language levels.
//
//===----------------------------------------------------------------------===//

#include "imp/ImpMachine.h"
#include "imp/ImpMonitors.h"
#include "imp/ImpParser.h"
#include "monitors/Collecting.h"
#include "monitors/Profiler.h"

#include <gtest/gtest.h>

using namespace monsem;

namespace {

struct ParsedImp {
  ImpContext Ctx;
  DiagnosticSink Diags;
  const Cmd *C = nullptr;
};

std::unique_ptr<ParsedImp> parseImpOk(std::string_view Src) {
  auto P = std::make_unique<ParsedImp>();
  P->C = parseImpProgram(P->Ctx, Src, P->Diags);
  EXPECT_NE(P->C, nullptr) << P->Diags.str();
  return P;
}

} // namespace

TEST(ImpExprMonitorTest, ExpressionAnnotationsFire) {
  auto P = parseImpOk("n := 4; acc := 0; "
                      "while ({cond}: (n > 0)) do "
                      "  acc := acc + ({sq}: (n * n)); n := n - 1 "
                      "end; print acc");
  CallProfiler Prof; // An L_lambda monitor over the expressions.
  Cascade ExprC;
  ExprC.use(Prof);
  ImpCascade NoCmd;
  ImpRunResult R = runImp(NoCmd, ExprC, P->C);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<std::string>{"30"}));
  ASSERT_EQ(R.FinalStates.size(), 1u);
  const auto &S = CallProfiler::state(*R.FinalStates[0]);
  EXPECT_EQ(S.count("cond"), 5u) << "condition tested 5 times";
  EXPECT_EQ(S.count("sq"), 4u);
}

TEST(ImpExprMonitorTest, CollectingValuesInsideCommands) {
  auto P = parseImpOk("k := 3; "
                      "while k > 0 do x := {v}: (k % 2); k := k - 1 end");
  CollectingMonitor Coll;
  Cascade ExprC;
  ExprC.use(Coll);
  ImpCascade NoCmd;
  ImpRunResult R = runImp(NoCmd, ExprC, P->C);
  ASSERT_TRUE(R.Ok) << R.Error;
  const auto *Set = CollectingMonitor::state(*R.FinalStates[0]).setFor("v");
  ASSERT_NE(Set, nullptr);
  EXPECT_EQ(*Set, (std::set<std::string>{"0", "1"}));
}

TEST(ImpExprMonitorTest, BothLevelsSimultaneously) {
  auto P = parseImpOk("n := 3; "
                      "while n > 0 do "
                      "  {body}: n := ({dec}: (n - 1)) "
                      "end");
  ImpStmtProfiler CmdProf;
  ImpCascade CmdC;
  CmdC.use(CmdProf);
  CallProfiler ExprProf;
  Cascade ExprC;
  ExprC.use(ExprProf);
  ImpRunResult R = runImp(CmdC, ExprC, P->C);
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_EQ(R.FinalStates.size(), 2u);
  EXPECT_EQ(ImpStmtProfiler::state(*R.FinalStates[0]).count("body"), 3u);
  EXPECT_EQ(CallProfiler::state(*R.FinalStates[1]).count("dec"), 3u);
}

TEST(ImpExprMonitorTest, SoundnessAcrossLevels) {
  auto P = parseImpOk("a := 10; "
                      "while a > 0 do {b}: a := ({e}: (a - 3)) end; "
                      "print a");
  ImpRunResult Std = runImp(P->C);
  ImpStmtProfiler CmdProf;
  ImpCascade CmdC;
  CmdC.use(CmdProf);
  CallProfiler ExprProf;
  Cascade ExprC;
  ExprC.use(ExprProf);
  ImpRunResult Mon = runImp(CmdC, ExprC, P->C);
  ASSERT_TRUE(Mon.Ok) << Mon.Error;
  EXPECT_EQ(Mon.Output, Std.Output);
  EXPECT_EQ(Mon.Store, Std.Store);
}

TEST(ImpExprMonitorTest, AmbiguousExpressionCascadeRejected) {
  auto P = parseImpOk("x := {v}: 1");
  CallProfiler Prof;
  CollectingMonitor Coll; // Both accept bare labels.
  Cascade ExprC;
  ExprC.use(Prof).use(Coll);
  ImpCascade NoCmd;
  ImpRunResult R = runImp(NoCmd, ExprC, P->C);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("two monitors"), std::string::npos);
}

TEST(ImpExprMonitorTest, ErrorsSkipPostProbe) {
  auto P = parseImpOk("x := {v}: (1 / 0)");
  CollectingMonitor Coll;
  Cascade ExprC;
  ExprC.use(Coll);
  ImpCascade NoCmd;
  ImpRunResult R = runImp(NoCmd, ExprC, P->C);
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(CollectingMonitor::state(*R.FinalStates[0]).Sets.size(), 0u);
}
