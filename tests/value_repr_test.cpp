//===- tests/value_repr_test.cpp - Value representation differentials ------===//
//
// Differential coverage for the 8-byte tagged Value against the legacy
// 16-byte boxed struct (-DMONSEM_VALUE_BOXED=ON). The representation is a
// compile-time choice, so a single binary cannot hold both; instead every
// assertion here is representation-independent — hard-coded int-boundary
// goldens plus cross-evaluator / cross-strategy / cross-env-rep agreement
// on the random corpus — and CI runs the suite in both configurations.
// The same goldens passing in both builds is what establishes
// tagged == boxed on (Answer, Outcome, Steps) and monitor final states.
//
//===----------------------------------------------------------------------===//

#include "compile/VM.h"
#include "interp/Direct.h"
#include "interp/Eval.h"
#include "monitors/Profiler.h"
#include "syntax/Printer.h"

#include "RandomProgram.h"

#include <gtest/gtest.h>

#include <climits>

using namespace monsem;

namespace {

constexpr uint64_t Fuel = 500000;

// The inline range of the tagged representation: [-2^47, 2^47).
constexpr int64_t kInlineMax = (int64_t{1} << 47) - 1;
constexpr int64_t kInlineMin = -(int64_t{1} << 47);

RunResult runCEK(const Expr *E, Strategy S, bool Lexical) {
  RunOptions Opts;
  Opts.Strat = S;
  Opts.MaxSteps = Fuel;
  Opts.Lexical = Lexical;
  return evaluate(E, Opts);
}

RunResult runMonitoredCEK(const Cascade &C, const Expr *E, Strategy S,
                          bool Lexical) {
  return evaluate(C & StrategyTag{S} & maxSteps(Fuel) &
                      (Lexical ? kLexicalEnv : kNamedEnv),
                  E);
}

const Expr *parseInto(ParsedProgram &P, std::string_view Src) {
  EXPECT_TRUE(P.ok()) << Src;
  return P.root();
}

} // namespace

//===----------------------------------------------------------------------===//
// Size and encoding invariants
//===----------------------------------------------------------------------===//

TEST(ValueReprTest, SizeMatchesConfiguration) {
#ifndef MONSEM_VALUE_BOXED
  // The tentpole: a Value is one machine word, and everything built from
  // Values halves with it. The flat-frame header packs parent + shape id
  // into one word, and a closure is two words (lambda + environment).
  EXPECT_EQ(sizeof(Value), 8u);
  EXPECT_EQ(sizeof(Cell), 16u);
  EXPECT_EQ(sizeof(EnvFrame), 8u);
  EXPECT_EQ(sizeof(Closure), 16u);
#else
  EXPECT_EQ(sizeof(Value), 16u);
#endif
  // The Unit-placeholder convention allocFrame asserts: a default Value is
  // Unit and the tag predicate sees it.
  EXPECT_TRUE(Value().isUnit());
  EXPECT_TRUE(Value::mkUnit().isUnit());
  EXPECT_FALSE(Value::mkInt(0).isUnit());
  EXPECT_FALSE(Value::mkBool(false).isUnit());
  EXPECT_FALSE(Value::mkNil().isUnit());
}

TEST(ValueReprTest, InlineRangePredicate) {
  EXPECT_TRUE(Value::fitsInline(0));
  EXPECT_TRUE(Value::fitsInline(-1));
  EXPECT_TRUE(Value::fitsInline(kInlineMax));
  EXPECT_TRUE(Value::fitsInline(kInlineMin));
#ifndef MONSEM_VALUE_BOXED
  EXPECT_FALSE(Value::fitsInline(kInlineMax + 1));
  EXPECT_FALSE(Value::fitsInline(kInlineMin - 1));
  EXPECT_FALSE(Value::fitsInline(INT64_MAX));
  EXPECT_FALSE(Value::fitsInline(INT64_MIN));
#endif
}

TEST(ValueReprTest, IntBoundariesRoundTrip) {
  Arena A;
  const int64_t Boundary[] = {0,
                              1,
                              -1,
                              kInlineMax,
                              kInlineMax + 1,
                              kInlineMin,
                              kInlineMin - 1,
                              INT64_MAX,
                              INT64_MIN,
                              INT64_MAX - 1,
                              INT64_MIN + 1};
  for (int64_t V : Boundary) {
    Value X = Value::mkInt(V, A);
    // The encoding (inline vs boxed) must be unobservable through the
    // accessor API: same kind, same payload, same rendering.
    EXPECT_EQ(X.kind(), ValueKind::Int) << V;
    EXPECT_TRUE(X.is(ValueKind::Int)) << V;
    EXPECT_FALSE(X.isUnit()) << V;
    EXPECT_FALSE(X.isFunction()) << V;
    EXPECT_EQ(X.asInt(), V);
    EXPECT_EQ(toDisplayString(X), std::to_string(V));
    // Structural equality across two independent allocations (distinct
    // boxes for out-of-range ints) is by payload, not identity.
    Value Y = Value::mkInt(V, A);
    bool Ok = true;
    EXPECT_TRUE(valueEquals(X, Y, Ok)) << V;
    EXPECT_TRUE(Ok) << V;
    Value Z = Value::mkInt(V == 0 ? 1 : V / 2, A);
    Ok = true;
    EXPECT_FALSE(valueEquals(X, Z, Ok)) << V;
    EXPECT_TRUE(Ok) << V;
  }
}

TEST(ValueReprTest, NonIntImmediatesRoundTrip) {
  EXPECT_TRUE(Value::mkBool(true).asBool());
  EXPECT_FALSE(Value::mkBool(false).asBool());
  EXPECT_EQ(Value::mkBool(false).kind(), ValueKind::Bool);
  EXPECT_EQ(Value::mkNil().kind(), ValueKind::Nil);
  EXPECT_EQ(Value::mkPrim1(Prim1Op::Hd).asPrim1(), Prim1Op::Hd);
  EXPECT_EQ(Value::mkPrim2(Prim2Op::Cons).asPrim2(), Prim2Op::Cons);
  EXPECT_TRUE(Value::mkPrim1(Prim1Op::Not).isFunction());
  EXPECT_TRUE(Value::mkPrim2(Prim2Op::Add).isFunction());
}

//===----------------------------------------------------------------------===//
// Hard-coded goldens that cross the inline/boxed boundary at run time
//===----------------------------------------------------------------------===//

namespace {

struct Golden {
  const char *Src;
  const char *Expect; ///< Expected ValueText under every evaluator.
};

// pow2 computes out of the 48-bit inline range by repeated Mul; the other
// programs force unboxing (Div, comparison, equality, Abs/Neg, lists of
// boxed ints) so a representation bug cannot hide behind rendering.
const Golden kBoundaryGoldens[] = {
    {"letrec pow2 = lambda n. if n < 1 then 1 else 2 * pow2 (n - 1) in "
     "pow2 62",
     "4611686018427387904"},
    {"letrec pow2 = lambda n. if n < 1 then 1 else 2 * pow2 (n - 1) in "
     "0 - pow2 62",
     "-4611686018427387904"},
    {"letrec pow2 = lambda n. if n < 1 then 1 else 2 * pow2 (n - 1) in "
     "pow2 62 / pow2 30",
     "4294967296"},
    {"letrec pow2 = lambda n. if n < 1 then 1 else 2 * pow2 (n - 1) in "
     "pow2 50 = pow2 50",
     "True"},
    {"letrec pow2 = lambda n. if n < 1 then 1 else 2 * pow2 (n - 1) in "
     "pow2 50 < pow2 50 + 1",
     "True"},
    {"letrec pow2 = lambda n. if n < 1 then 1 else 2 * pow2 (n - 1) in "
     "abs (0 - pow2 55)",
     "36028797018963968"},
    {"letrec pow2 = lambda n. if n < 1 then 1 else 2 * pow2 (n - 1) in "
     "pow2 60 : pow2 20 : [3]",
     "[1152921504606846976, 1048576, 3]"},
    {"letrec pow2 = lambda n. if n < 1 then 1 else 2 * pow2 (n - 1) in "
     "pow2 55 % (pow2 20 + 7)",
     "557049"},
};

} // namespace

TEST(ValueReprTest, BoundaryGoldensAgreeOnEveryBackend) {
  for (const Golden &G : kBoundaryGoldens) {
    auto P = ParsedProgram::parse(G.Src);
    const Expr *E = parseInto(*P, G.Src);

    for (Strategy S :
         {Strategy::Strict, Strategy::CallByName, Strategy::CallByNeed}) {
      for (bool Lexical : {true, false}) {
        RunResult R = runCEK(E, S, Lexical);
        ASSERT_TRUE(R.Ok) << G.Src << ": " << R.Error;
        EXPECT_EQ(R.ValueText, G.Expect)
            << G.Src << " (CEK " << strategyName(S)
            << (Lexical ? ", lexical)" : ", named)");
      }
    }
    RunResult VM = evaluate(EvalMode(kVM) & maxSteps(Fuel), E);
    ASSERT_TRUE(VM.Ok) << G.Src << ": " << VM.Error;
    EXPECT_EQ(VM.ValueText, G.Expect) << G.Src << " (VM)";

    RunResult Direct = evaluate(EvalMode(kDirect) & maxSteps(Fuel), E);
    ASSERT_TRUE(Direct.Ok) << G.Src << ": " << Direct.Error;
    EXPECT_EQ(Direct.ValueText, G.Expect) << G.Src << " (Direct)";
  }
}

//===----------------------------------------------------------------------===//
// Random corpus: every evaluator, env rep, and strategy agrees within the
// build; running the identical corpus in both configurations (CI matrix)
// closes the tagged-vs-boxed differential.
//===----------------------------------------------------------------------===//

class ValueReprCorpus : public ::testing::TestWithParam<unsigned> {};

TEST_P(ValueReprCorpus, UnmonitoredEvaluatorsAgree) {
  AstContext Ctx;
  const Expr *Prog = monsem::testing::genProgram(Ctx, GetParam());
  RunResult Base = runCEK(Prog, Strategy::Strict, /*Lexical=*/true);

  // Same strategy, other env representation: must agree outcome-for-
  // outcome AND step-for-step (the machine transitions are the same; only
  // the environment lookup differs).
  RunResult Named = runCEK(Prog, Strategy::Strict, /*Lexical=*/false);
  EXPECT_TRUE(Base.sameOutcome(Named)) << printExpr(Prog);
  EXPECT_EQ(Base.Steps, Named.Steps) << printExpr(Prog);

  // Lazy strategies on both env reps agree with each other (they may
  // legitimately differ from strict on error outcomes).
  for (Strategy S : {Strategy::CallByName, Strategy::CallByNeed}) {
    RunResult L = runCEK(Prog, S, /*Lexical=*/true);
    RunResult N = runCEK(Prog, S, /*Lexical=*/false);
    EXPECT_TRUE(L.sameOutcome(N))
        << strategyName(S) << ": " << printExpr(Prog);
    EXPECT_EQ(L.Steps, N.Steps) << strategyName(S) << ": " << printExpr(Prog);
  }

  // The strict backends through the unified entry.
  RunResult VM = evaluate(EvalMode(kVM) & maxSteps(Fuel), Prog);
  EXPECT_TRUE(VM.sameOutcome(Base)) << "VM: " << printExpr(Prog);

  RunResult Direct = evaluate(EvalMode(kDirect) & maxSteps(Fuel), Prog);
  if (!Direct.FuelExhausted) // The CPS budget is tighter than CEK fuel.
    EXPECT_TRUE(Direct.sameOutcome(Base)) << "Direct: " << printExpr(Prog);
}

TEST_P(ValueReprCorpus, MonitoredStatesAgreeAcrossEvaluators) {
  AstContext Ctx;
  const Expr *Prog = monsem::testing::genProgram(Ctx, GetParam());

  // CountingProfiler claims the corpus' bare A/B labels; the final state
  // renders deterministically, so it must be bit-identical across every
  // configuration (and, via the CI matrix, across representations).
  auto stateOf = [](const RunResult &R) -> std::string {
    return R.FinalStates.empty() ? std::string() : R.FinalStates[0]->str();
  };

  CountingProfiler Count;
  Cascade C;
  C.use(Count);

  RunResult Base = runMonitoredCEK(C, Prog, Strategy::Strict, true);
  RunResult Named = runMonitoredCEK(C, Prog, Strategy::Strict, false);
  EXPECT_TRUE(Base.sameOutcome(Named)) << printExpr(Prog);
  EXPECT_EQ(stateOf(Base), stateOf(Named)) << printExpr(Prog);

  RunResult VM = evaluate(EvalMode(Count) & kVM & maxSteps(Fuel), Prog);
  EXPECT_TRUE(VM.sameOutcome(Base)) << "VM: " << printExpr(Prog);
  EXPECT_EQ(stateOf(VM), stateOf(Base)) << "VM: " << printExpr(Prog);

  RunResult Direct =
      evaluate(EvalMode(Count) & kDirect & maxSteps(Fuel), Prog);
  if (!Direct.FuelExhausted) {
    EXPECT_TRUE(Direct.sameOutcome(Base)) << "Direct: " << printExpr(Prog);
    EXPECT_EQ(stateOf(Direct), stateOf(Base)) << "Direct: " << printExpr(Prog);
  }

  // Lazy strategies: the monitored run agrees with its own unmonitored
  // baseline (soundness), per env rep.
  for (Strategy S : {Strategy::CallByName, Strategy::CallByNeed}) {
    for (bool Lexical : {true, false}) {
      RunResult Std = runCEK(Prog, S, Lexical);
      RunResult Mon = runMonitoredCEK(C, Prog, S, Lexical);
      EXPECT_TRUE(Mon.sameOutcome(Std))
          << strategyName(S) << ": " << printExpr(Prog);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValueReprCorpus, ::testing::Range(0u, 60u));

//===----------------------------------------------------------------------===//
// lookupFrame / EnvView honor the Unit-placeholder tag predicate
//===----------------------------------------------------------------------===//

TEST(ValueReprTest, LookupFrameSkipsUnitSlots) {
  Arena A;
  Symbol X = Symbol::intern("x"), Y = Symbol::intern("y");
  FrameShape Shape;
  Shape.Slots = {X, Y};
  // Frames store a shape id and decode it through the owning Resolution's
  // table; a one-entry table stands in for it here (Shape.Id stays 0).
  const FrameShape *Table[] = {&Shape};
  EnvFrame *F = allocFrame(A, &Shape, nullptr, Value::mkInt(7));
  // Slot 1 (y) is a Unit placeholder: absent for lookup.
  EXPECT_EQ(lookupFrame(F, Y, Table), nullptr);
  ASSERT_NE(lookupFrame(F, X, Table), nullptr);
  EXPECT_EQ(lookupFrame(F, X, Table)->asInt(), 7);
  // Initializing the slot makes it visible — including to a value whose
  // payload is all zeroes (Int 0 must NOT look like Unit).
  F->slots()[1] = Value::mkInt(0);
  ASSERT_NE(lookupFrame(F, Y, Table), nullptr);
  EXPECT_EQ(lookupFrame(F, Y, Table)->asInt(), 0);
  EXPECT_FALSE(F->slots()[1].isUnit());
}
