//===- tests/compiler_test.cpp - Bytecode compiler & VM --------------------===//
//
// Level-2 specialization (Section 9.1): the instrumented program must be
// observationally identical to the monitored interpreter — same answers,
// same monitor states — with the interpretive overhead gone.
//
//===----------------------------------------------------------------------===//

#include "compile/Compiler.h"
#include "compile/VM.h"
#include "interp/Eval.h"
#include "monitors/Collecting.h"
#include "monitors/Profiler.h"
#include "monitors/Tracer.h"
#include "syntax/Printer.h"

#include "RandomProgram.h"

#include <gtest/gtest.h>

using namespace monsem;

namespace {

std::unique_ptr<ParsedProgram> parseOk(std::string_view Src) {
  auto P = ParsedProgram::parse(Src);
  EXPECT_TRUE(P->ok()) << P->diags().str();
  return P;
}

RunResult runVM(std::string_view Src) {
  auto P = parseOk(Src);
  Cascade Empty;
  return evaluateCompiled(Empty, P->root());
}

} // namespace

TEST(CompilerTest, BasicPrograms) {
  EXPECT_EQ(runVM("1 + 2 * 3").IntValue, 7);
  EXPECT_EQ(runVM("(lambda x. x + 1) 41").IntValue, 42);
  EXPECT_EQ(runVM("if 1 < 2 then 10 else 20").IntValue, 10);
  EXPECT_EQ(runVM("letrec fac = lambda x. if x = 0 then 1 else "
                  "x * fac (x - 1) in fac 6")
                .IntValue,
            720);
  EXPECT_EQ(runVM("hd (tl [1, 2, 3])").IntValue, 2);
  EXPECT_EQ(runVM("let m = min in m 4 7").IntValue, 4);
  EXPECT_EQ(runVM("letrec x = 2 + 3 in x * x").IntValue, 25);
}

TEST(CompilerTest, RuntimeErrors) {
  EXPECT_NE(runVM("1 / 0").Error.find("division by zero"),
            std::string::npos);
  EXPECT_NE(runVM("hd []").Error.find("hd"), std::string::npos);
  EXPECT_NE(runVM("1 2").Error.find("non-function"), std::string::npos);
  EXPECT_NE(runVM("if 3 then 1 else 2").Error.find("boolean"),
            std::string::npos);
  EXPECT_NE(runVM("letrec x = x + 1 in x").Error.find("before init"),
            std::string::npos);
}

TEST(CompilerTest, UnboundVariableIsACompileError) {
  auto P = parseOk("x + 1");
  DiagnosticSink D;
  EXPECT_EQ(compileProgram(P->root(), D), nullptr);
  EXPECT_TRUE(D.hasErrors());
}

TEST(CompilerTest, TailCallsRunInConstantFrameSpace) {
  // One million tail-recursive iterations.
  RunResult R = runVM("letrec loop = lambda n. if n = 0 then 7 else "
                      "loop (n - 1) in loop 1000000");
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.IntValue, 7);
}

TEST(CompilerTest, InstrumentationEmitsProbesOnlyAtAnnotations) {
  auto P = parseOk("letrec f = lambda x. {f}: x + 1 in f 1 + f 2");
  DiagnosticSink D;
  auto On = compileProgram(P->root(), D);
  CompileOptions Off;
  Off.Instrument = false;
  auto OffP = compileProgram(P->root(), D, Off);
  ASSERT_NE(On, nullptr);
  ASSERT_NE(OffP, nullptr);
  EXPECT_EQ(On->Probes.size(), 1u);
  EXPECT_EQ(OffP->Probes.size(), 0u);
  EXPECT_NE(On->disassemble().find("monpre {f}"), std::string::npos);
  EXPECT_EQ(OffP->disassemble().find("monpre"), std::string::npos);
}

TEST(CompilerTest, InstrumentedRunMatchesInterpreterStates) {
  const char *Src =
      "letrec mul = lambda x. lambda y. {mul(x, y)}: {mul}:(x*y) in "
      "letrec fac = lambda x. {fac(x)}: {fac}: if (x=0) then 1 else "
      "mul x (fac (x-1)) in fac 3";
  auto P = parseOk(Src);
  CallProfiler Prof;
  Tracer Trc;
  Cascade C = cascadeOf({&Prof, &Trc});
  RunResult Interp = evaluate(C, P->root());
  RunResult VM = evaluateCompiled(C, P->root());
  ASSERT_TRUE(Interp.Ok && VM.Ok) << Interp.Error << VM.Error;
  EXPECT_EQ(Interp.ValueText, VM.ValueText);
  ASSERT_EQ(VM.FinalStates.size(), 2u);
  EXPECT_EQ(Interp.FinalStates[0]->str(), VM.FinalStates[0]->str());
  EXPECT_EQ(Interp.FinalStates[1]->str(), VM.FinalStates[1]->str());
}

TEST(CompilerTest, MonitoredTailPositionStillProbesPost) {
  // The annotation wraps a tail call; MonPost must still fire with the
  // call's result.
  auto P = parseOk("letrec f = lambda n. if n = 0 then 0 else "
                   "{v}: f (n - 1) in f 3");
  CollectingMonitor Coll;
  Cascade C;
  C.use(Coll);
  RunResult R = evaluateCompiled(C, P->root());
  ASSERT_TRUE(R.Ok) << R.Error;
  const auto *S = CollectingMonitor::state(*R.FinalStates[0]).setFor("v");
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(*S, (std::set<std::string>{"0"}));
}

TEST(CompilerTest, FuelExhaustion) {
  auto P = parseOk("letrec loop = lambda x. loop x in loop 1");
  DiagnosticSink D;
  auto CP = compileProgram(P->root(), D);
  ASSERT_NE(CP, nullptr);
  RunOptions Opts;
  Opts.MaxSteps = 5000;
  RunResult R = runCompiled(*CP, nullptr, Opts);
  EXPECT_TRUE(R.FuelExhausted);
}

TEST(CompilerTest, DisassemblyIsStable) {
  auto P = parseOk("(lambda x. x + 1) 2");
  DiagnosticSink D;
  auto CP = compileProgram(P->root(), D);
  ASSERT_NE(CP, nullptr);
  std::string Dis = CP->disassemble();
  EXPECT_NE(Dis.find("block 0 (<main>)"), std::string::npos);
  EXPECT_NE(Dis.find("block 1 (lambda x)"), std::string::npos);
  EXPECT_NE(Dis.find("tailcall"), std::string::npos);
  // The lambda body `x + 1` fuses Var;Const;Prim2 into one instruction.
  EXPECT_NE(Dis.find("varconstprim2 0 1 +"), std::string::npos);

  // With fusion off, the unfused sequence disassembles as before.
  CompileOptions CO;
  CO.Fuse = false;
  auto Raw = compileProgram(P->root(), D, CO);
  ASSERT_NE(Raw, nullptr);
  std::string RawDis = Raw->disassemble();
  EXPECT_NE(RawDis.find("prim2 +"), std::string::npos);
  EXPECT_EQ(RawDis.find("varconstprim2"), std::string::npos);
}

TEST(CompilerTest, VMIsFasterInStepsThanInterpreter) {
  // Not a wall-clock benchmark (see bench/), but the instruction count of
  // the compiled program should undercut the machine's transition count:
  // the syntax dispatch is gone.
  const char *Src = "letrec fib = lambda n. if n < 2 then n else "
                    "fib (n - 1) + fib (n - 2) in fib 15";
  auto P = parseOk(Src);
  RunResult Interp = evaluate(P->root());
  Cascade Empty;
  RunResult VM = evaluateCompiled(Empty, P->root());
  ASSERT_TRUE(Interp.Ok && VM.Ok);
  EXPECT_EQ(Interp.ValueText, VM.ValueText);
  EXPECT_LT(VM.Steps, Interp.Steps);
}

// Differential: VM vs CEK machine over generated programs, both standard
// and monitored.
class VMDifferentialTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(VMDifferentialTest, AgreesWithMachine) {
  AstContext Ctx;
  const Expr *Prog = monsem::testing::genProgram(Ctx, GetParam());
  RunOptions Opts;
  Opts.MaxSteps = 1000000;
  RunResult Interp = evaluate(Prog, Opts);
  Cascade Empty;
  RunResult VM = evaluateCompiled(Empty, Prog, Opts);
  EXPECT_TRUE(Interp.sameOutcome(VM))
      << printExpr(Prog) << "\ninterp: "
      << (Interp.Ok ? Interp.ValueText : Interp.Error)
      << "\nvm: " << (VM.Ok ? VM.ValueText : VM.Error);
}

TEST_P(VMDifferentialTest, MonitoredStatesAgreeWithMachine) {
  AstContext Ctx;
  const Expr *Prog = monsem::testing::genProgram(Ctx, GetParam());
  CountingProfiler Count;
  Cascade C;
  C.use(Count);
  RunOptions Opts;
  Opts.MaxSteps = 1000000;
  RunResult Interp = evaluate(C & maxSteps(Opts.MaxSteps), Prog);
  RunResult VM = evaluateCompiled(C, Prog, Opts);
  EXPECT_TRUE(Interp.sameOutcome(VM)) << printExpr(Prog);
  if (Interp.Ok && VM.Ok) {
    ASSERT_EQ(Interp.FinalStates.size(), VM.FinalStates.size());
    EXPECT_EQ(Interp.FinalStates[0]->str(), VM.FinalStates[0]->str())
        << printExpr(Prog);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VMDifferentialTest,
                         ::testing::Range(0u, 80u));
