//===- tests/paper_examples_test.cpp - Golden tests for Sections 5 & 8 -----===//
//
// Each test reproduces one worked example from the paper, with the paper's
// expected monitor state as the golden value. See EXPERIMENTS.md (E1-E5).
//
//===----------------------------------------------------------------------===//

#include "interp/Eval.h"
#include "monitors/Collecting.h"
#include "monitors/Demon.h"
#include "monitors/Profiler.h"
#include "monitors/Tracer.h"

#include <gtest/gtest.h>

using namespace monsem;

namespace {

std::unique_ptr<ParsedProgram> parseOk(std::string_view Src) {
  auto P = ParsedProgram::parse(Src);
  EXPECT_TRUE(P->ok()) << P->diags().str();
  return P;
}

} // namespace

// E1 — Section 5, Fig. 4: the counting profiler on annotated factorial.
// "The profiling information gathered by monitoring this program with the
//  above monitor would be sigma = <1, 5>."
TEST(PaperExamples, E1_CountingProfiler) {
  auto P = parseOk("letrec fac = lambda x. if (x = 0) then {A}:1 "
                   "else {B}:(x * fac (x - 1)) in fac 5");
  CountingProfiler Count;
  Cascade C;
  C.use(Count);
  RunResult R = evaluate(C, P->root());
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.IntValue, 120);
  EXPECT_EQ(R.FinalStates[0]->str(), "<1, 5>");
  const auto &S = CountingProfiler::state(*R.FinalStates[0]);
  EXPECT_EQ(S.CountA, 1u);
  EXPECT_EQ(S.CountB, 5u);
}

// E2 — Section 8, Fig. 6: the call profiler.
// "The profiler semantics would provide the following information in the
//  counter environment: [fac -> 4, mul -> 3]"
TEST(PaperExamples, E2_CallProfiler) {
  auto P = parseOk(
      "letrec mul = lambda x. lambda y. {mul}:(x*y) in "
      "letrec fac = lambda x. {fac}:if (x=0) then 1 else mul x (fac (x-1)) "
      "in fac 3");
  CallProfiler Prof;
  Cascade C;
  C.use(Prof);
  RunResult R = evaluate(C, P->root());
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.IntValue, 6);
  const auto &S = CallProfiler::state(*R.FinalStates[0]);
  EXPECT_EQ(S.count("fac"), 4u);
  EXPECT_EQ(S.count("mul"), 3u);
  EXPECT_EQ(R.FinalStates[0]->str(), "[fac -> 4, mul -> 3]");
}

// E3 — Section 8, Fig. 7: the fancy tracer on fac 3.
TEST(PaperExamples, E3_Tracer) {
  auto P = parseOk(
      "letrec mul = lambda x. lambda y. {mul(x, y)}:(x*y) in "
      "letrec fac = lambda x. {fac(x)}:if (x=0) then 1 else "
      "mul x (fac (x-1)) in fac 3");
  Tracer Trc;
  Cascade C;
  C.use(Trc);
  RunResult R = evaluate(C, P->root());
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.IntValue, 6);

  const char *Want = "[FAC receives (3)]\n"
                     "     [FAC receives (2)]\n"
                     "          [FAC receives (1)]\n"
                     "               [FAC receives (0)]\n"
                     "               [FAC returns 1]\n"
                     "               [MUL receives (1 1)]\n"
                     "               [MUL returns 1]\n"
                     "          [FAC returns 1]\n"
                     "          [MUL receives (2 1)]\n"
                     "          [MUL returns 2]\n"
                     "     [FAC returns 2]\n"
                     "     [MUL receives (3 2)]\n"
                     "     [MUL returns 6]\n"
                     "[FAC returns 6]\n";
  EXPECT_EQ(Tracer::state(*R.FinalStates[0]).Chan.str(), Want);
}

// E4 — Section 8, Fig. 8: the unsorted-list demon.
// "The demon returns the following information in its state:
//  sigma = {l1, l3}"
TEST(PaperExamples, E4_UnsortedListDemon) {
  auto P = parseOk(
      "letrec inclist = lambda l. lambda acc. if (l = []) then acc else "
      "inclist (tl l) (((hd l) + 1) : acc) in "
      "letrec l1 = {l1}:(inclist [1, 10, 100] []) in "
      "letrec l2 = {l2}:(inclist l1 []) in "
      "letrec l3 = {l3}:(inclist l2 []) in l3");
  Demon D = Demon::unsortedLists();
  Cascade C;
  C.use(D);
  RunResult R = evaluate(C, P->root());
  ASSERT_TRUE(R.Ok) << R.Error;
  const auto &S = Demon::state(*R.FinalStates[0]);
  EXPECT_TRUE(S.fired("l1"));
  EXPECT_FALSE(S.fired("l2"));
  EXPECT_TRUE(S.fired("l3"));
  EXPECT_EQ(R.FinalStates[0]->str(), "{l1, l3}");
}

// The intermediate values of E4, for the record: l1 = [101, 11, 2]
// (unsorted), l2 = [3, 12, 102] (sorted), l3 = [103, 13, 4] (unsorted).
TEST(PaperExamples, E4_IntermediateValues) {
  auto P1 = parseOk(
      "letrec inclist = lambda l. lambda acc. if (l = []) then acc else "
      "inclist (tl l) (((hd l) + 1) : acc) in inclist [1, 10, 100] []");
  EXPECT_EQ(evaluate(P1->root()).ValueText, "[101, 11, 2]");
  auto P2 = parseOk(
      "letrec inclist = lambda l. lambda acc. if (l = []) then acc else "
      "inclist (tl l) (((hd l) + 1) : acc) in "
      "inclist (inclist [1, 10, 100] []) []");
  EXPECT_EQ(evaluate(P2->root()).ValueText, "[3, 12, 102]");
}

// E5 — Section 8, Fig. 9: the collecting monitor on fac 3.
// "[test -> {True, False}, n -> {1, 2, 3}]" — sets render sorted here.
TEST(PaperExamples, E5_CollectingMonitor) {
  auto P = parseOk("letrec fac = lambda n. if {test}:(n = 0) then 1 else "
                   "({n}: n) * fac (n - 1) in fac 3");
  CollectingMonitor Coll;
  Cascade C;
  C.use(Coll);
  RunResult R = evaluate(C, P->root());
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.IntValue, 6);
  const auto &S = CollectingMonitor::state(*R.FinalStates[0]);
  const auto *Test = S.setFor("test");
  ASSERT_NE(Test, nullptr);
  EXPECT_EQ(*Test, (std::set<std::string>{"False", "True"}));
  const auto *N = S.setFor("n");
  ASSERT_NE(N, nullptr);
  EXPECT_EQ(*N, (std::set<std::string>{"1", "2", "3"}));
  EXPECT_EQ(R.FinalStates[0]->str(),
            "[n -> {1, 2, 3}, test -> {False, True}]");
}

// Section 3.1: the answer-algebra parameterization example.
TEST(PaperExamples, StringAnswerAlgebra) {
  auto P = parseOk("letrec fac = lambda x. if x = 0 then 1 else "
                   "x * fac (x - 1) in fac 5");
  RunOptions Opts;
  Opts.Algebra = &StringAnswerAlgebra::instance();
  EXPECT_EQ(evaluate(P->root(), Opts).ValueText, "The result is: 120");
}

// Soundness on the paper's own examples: the monitored answer equals the
// standard answer, and equals the answer of the annotation-stripped
// program (Theorem 7.7).
TEST(PaperExamples, SoundnessOnPaperPrograms) {
  const char *Sources[] = {
      "letrec fac = lambda x. if (x = 0) then {A}:1 "
      "else {B}:(x * fac (x - 1)) in fac 5",
      "letrec mul = lambda x. lambda y. {mul(x, y)}:(x*y) in "
      "letrec fac = lambda x. {fac(x)}:if (x=0) then 1 else "
      "mul x (fac (x-1)) in fac 3",
      "letrec fac = lambda n. if {test}:(n = 0) then 1 else "
      "({n}: n) * fac (n - 1) in fac 3",
  };
  CountingProfiler Count;
  CallProfiler Prof;
  Tracer Trc;
  CollectingMonitor Coll;
  for (const char *Src : Sources) {
    auto P = parseOk(Src);
    RunResult Std = evaluate(P->root());
    AstContext Stripped;
    const Expr *Plain = stripAnnotations(Stripped, P->root());
    EXPECT_EQ(evaluate(Plain).ValueText, Std.ValueText);
    for (const Monitor *M :
         {static_cast<const Monitor *>(&Count),
          static_cast<const Monitor *>(&Trc)}) {
      Cascade C;
      C.use(*M);
      RunResult Mon = evaluate(C, P->root());
      EXPECT_TRUE(Mon.sameOutcome(Std)) << Src;
    }
  }
}
