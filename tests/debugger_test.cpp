//===- tests/debugger_test.cpp - Scripted dbx-style debugger sessions ------===//

#include "interp/Eval.h"
#include "monitors/Debugger.h"
#include "monitors/Profiler.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace monsem;

namespace {

std::unique_ptr<ParsedProgram> parseOk(std::string_view Src) {
  auto P = ParsedProgram::parse(Src);
  EXPECT_TRUE(P->ok()) << P->diags().str();
  return P;
}

const char *FacSrc =
    "letrec fac = lambda x. {fac(x)}: if x = 0 then 1 else "
    "x * fac (x - 1) in fac 3";

std::vector<std::string> runScript(std::vector<std::string> Script,
                                   std::string_view Src = FacSrc) {
  auto P = parseOk(Src);
  Debugger Dbg(std::move(Script));
  Cascade C;
  C.use(Dbg);
  RunResult R = evaluate(C, P->root());
  EXPECT_TRUE(R.Ok) << R.Error;
  return Debugger::state(*R.FinalStates[0]).Chan.lines();
}

} // namespace

TEST(DebuggerTest, StopsAtFirstEventAndContinues) {
  auto Lines = runScript({"continue"});
  ASSERT_GE(Lines.size(), 1u);
  EXPECT_EQ(Lines[0], "stopped at fac(x = 3)");
  EXPECT_EQ(Lines.size(), 1u) << "continue must run to completion";
}

TEST(DebuggerTest, SteppingVisitsEveryCall) {
  auto Lines = runScript({"step", "step", "step", "step", "quit"});
  std::vector<std::string> Stops;
  for (const auto &L : Lines)
    if (L.rfind("stopped at", 0) == 0)
      Stops.push_back(L);
  ASSERT_EQ(Stops.size(), 4u);
  EXPECT_EQ(Stops[0], "stopped at fac(x = 3)");
  EXPECT_EQ(Stops[1], "stopped at fac(x = 2)");
  EXPECT_EQ(Stops[2], "stopped at fac(x = 1)");
  EXPECT_EQ(Stops[3], "stopped at fac(x = 0)");
}

TEST(DebuggerTest, StepModeReportsReturns) {
  auto Lines = runScript({"step", "step", "step", "step", "step"});
  bool SawReturn = false;
  for (const auto &L : Lines)
    if (L.find("fac returned") != std::string::npos)
      SawReturn = true;
  EXPECT_TRUE(SawReturn);
}

TEST(DebuggerTest, PrintInspectsEnvironment) {
  auto Lines = runScript({"print x", "continue"});
  ASSERT_GE(Lines.size(), 2u);
  EXPECT_EQ(Lines[1], "x = 3");
}

TEST(DebuggerTest, PrintUnboundVariable) {
  auto Lines = runScript({"print nothere", "continue"});
  EXPECT_EQ(Lines[1], "nothere = ?");
}

TEST(DebuggerTest, LocalsListsBindings) {
  auto Lines = runScript({"locals", "continue"});
  bool SawX = false;
  for (const auto &L : Lines)
    if (L.find("x = 3") != std::string::npos)
      SawX = true;
  EXPECT_TRUE(SawX);
}

TEST(DebuggerTest, WhereShowsCallStack) {
  // Stop at the third fac event and ask for a backtrace.
  auto Lines = runScript({"step", "step", "where", "quit"});
  // After two steps we are stopped at fac(x = 1) with three frames live.
  std::vector<std::string> Frames;
  for (const auto &L : Lines)
    if (L.find("#") != std::string::npos)
      Frames.push_back(L);
  ASSERT_EQ(Frames.size(), 3u);
  EXPECT_NE(Frames[0].find("fac(x = 1)"), std::string::npos)
      << "innermost frame first";
  EXPECT_NE(Frames[2].find("fac(x = 3)"), std::string::npos);
}

TEST(DebuggerTest, BreakpointsSkipUninterestingEvents) {
  const char *Src =
      "letrec g = lambda y. {g(y)}: y + 1 in "
      "letrec f = lambda x. {f(x)}: g x in f 41";
  auto Lines = runScript({"break g", "continue", "print y", "quit"}, Src);
  // First stop: f (debugger starts in stepping mode); then runs to g.
  ASSERT_GE(Lines.size(), 4u);
  EXPECT_EQ(Lines[0], "stopped at f(x = 41)");
  EXPECT_EQ(Lines[1], "breakpoint set on g");
  EXPECT_EQ(Lines[2], "stopped at g(y = 41)");
  EXPECT_EQ(Lines[3], "y = 41");
}

TEST(DebuggerTest, DeleteBreakpoint) {
  const char *Src =
      "letrec g = lambda y. {g(y)}: y + 1 in "
      "letrec f = lambda x. {f(x)}: g x + g x in f 1";
  auto Lines = runScript(
      {"break g", "continue", "delete g", "continue"}, Src);
  unsigned Stops = 0;
  for (const auto &L : Lines)
    if (L.rfind("stopped at", 0) == 0)
      ++Stops;
  EXPECT_EQ(Stops, 2u) << "f stop + first g stop only";
}

TEST(DebuggerTest, ExhaustedScriptDetaches) {
  auto Lines = runScript({});
  EXPECT_EQ(Lines.size(), 1u);
  EXPECT_EQ(Lines[0], "stopped at fac(x = 3)");
}

TEST(DebuggerTest, UnknownCommandIsReported) {
  auto Lines = runScript({"frobnicate", "continue"});
  EXPECT_EQ(Lines[1], "unknown command: frobnicate");
}

TEST(DebuggerTest, MonitorsCommandObservesInnerStates) {
  // Annotations are routed by qualifier: {profile:...} to the profiler,
  // {debug:...} to the debugger. At the third debug stop (fac 1) the
  // profiler has already counted the calls for x = 3, 2, 1 — the outer
  // annotation fires after the inner one in this nesting.
  auto Q = parseOk("letrec fac = lambda x. {profile:fac}: {debug:fac(x)}: "
                   "if x = 0 then 1 else x * fac (x - 1) in fac 3");
  CallProfiler Prof;
  Debugger Dbg({"step", "step", "monitors", "quit"});
  Cascade C;
  C.use(Prof).use(Dbg);
  RunResult R = evaluate(C, Q->root());
  ASSERT_TRUE(R.Ok) << R.Error;
  const auto &Lines = Debugger::state(*R.FinalStates[1]).Chan.lines();
  bool Saw = false;
  for (const auto &L : Lines)
    if (L.find("monitor 0: [fac -> 3]") != std::string::npos)
      Saw = true;
  EXPECT_TRUE(Saw) << Debugger::state(*R.FinalStates[1]).Chan.str();
}

TEST(DebuggerTest, InteractiveStreamSource) {
  std::istringstream In("print x\ncontinue\n");
  std::ostringstream Out;
  Debugger Dbg(In, Out);
  auto P = parseOk(FacSrc);
  Cascade C;
  C.use(Dbg);
  RunResult R = evaluate(C, P->root());
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_NE(Out.str().find("stopped at fac(x = 3)"), std::string::npos);
  EXPECT_NE(Out.str().find("x = 3"), std::string::npos);
}

TEST(DebuggerTest, SoundnessDespiteInteraction) {
  auto P = parseOk(FacSrc);
  RunResult Std = evaluate(P->root());
  Debugger Dbg({"step", "print x", "where", "step", "continue"});
  Cascade C;
  C.use(Dbg);
  RunResult Mon = evaluate(C, P->root());
  EXPECT_TRUE(Mon.sameOutcome(Std));
  EXPECT_EQ(Mon.IntValue, 6);
}
