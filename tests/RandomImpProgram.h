//===- tests/RandomImpProgram.h - Random L_imp programs ---------*- C++ -*-===//
///
/// \file
/// Seeded generator of imperative programs for property tests (soundness
/// of the L_imp monitoring semantics). Programs are terminating by
/// construction: every while loop decrements a dedicated counter variable.
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_TESTS_RANDOMIMPPROGRAM_H
#define MONSEM_TESTS_RANDOMIMPPROGRAM_H

#include "imp/ImpAst.h"

#include <random>
#include <string>
#include <vector>

namespace monsem::testing {

class ImpProgramGen {
public:
  ImpProgramGen(ImpContext &Ctx, unsigned Seed) : Ctx(Ctx), Rng(Seed) {
    // A fixed set of integer variables, all initialized up front so reads
    // never fail.
    for (const char *N : {"a", "b", "c", "d"})
      Vars.push_back(Symbol::intern(N));
  }

  const Cmd *gen() {
    const Cmd *Init = nullptr;
    for (Symbol V : Vars) {
      const Cmd *A = Ctx.mkAssign(V, intLit((int64_t)pick(10)));
      Init = Init ? Ctx.mkSeq(Init, A) : A;
    }
    const Cmd *Body = genSeq(3);
    const Cmd *P = Ctx.mkSeq(Init, Body);
    // Print everything so outputs capture the whole store.
    for (Symbol V : Vars)
      P = Ctx.mkSeq(P, Ctx.mkPrint(Ctx.exprs().mkVar(V)));
    return P;
  }

private:
  ImpContext &Ctx;
  std::mt19937 Rng;
  std::vector<Symbol> Vars;
  unsigned LoopCounter = 0;
  unsigned NextLabel = 0;

  unsigned pick(unsigned N) {
    return std::uniform_int_distribution<unsigned>(0, N - 1)(Rng);
  }
  bool flip(double P = 0.5) {
    return std::uniform_real_distribution<double>(0, 1)(Rng) < P;
  }
  Symbol var() { return Vars[pick((unsigned)Vars.size())]; }
  const Expr *intLit(int64_t V) { return Ctx.exprs().mkInt(V); }

  const Expr *maybeAnnotateExpr(const Expr *E) {
    if (!flip(0.15))
      return E;
    Annotation Ann;
    Ann.Head = Symbol::intern("e" + std::to_string(NextLabel++ % 8));
    return Ctx.exprs().mkAnnot(Ctx.exprs().internAnnotation(std::move(Ann)),
                               E);
  }

  const Expr *genIntExpr(int Depth) {
    if (Depth <= 0 || flip(0.4)) {
      if (flip())
        return Ctx.exprs().mkVar(var());
      return intLit((int64_t)pick(12) - 2);
    }
    Prim2Op Ops[] = {Prim2Op::Add, Prim2Op::Sub, Prim2Op::Mul,
                     Prim2Op::Min, Prim2Op::Max};
    return maybeAnnotateExpr(
        Ctx.exprs().mkPrim2(Ops[pick(5)], genIntExpr(Depth - 1),
                            genIntExpr(Depth - 1)));
  }

  const Expr *genBoolExpr(int Depth) {
    Prim2Op Ops[] = {Prim2Op::Lt, Prim2Op::Le, Prim2Op::Eq, Prim2Op::Ne};
    return Ctx.exprs().mkPrim2(Ops[pick(4)], genIntExpr(Depth),
                               genIntExpr(Depth));
  }

  const Cmd *maybeAnnotate(const Cmd *C) {
    if (!flip(0.3))
      return C;
    Annotation Ann;
    Ann.Head = Symbol::intern("s" + std::to_string(NextLabel++ % 8));
    return Ctx.mkAnnot(Ctx.exprs().internAnnotation(std::move(Ann)), C);
  }

  const Cmd *genSeq(int Depth) {
    const Cmd *C = genCmd(Depth);
    unsigned Extra = pick(3);
    for (unsigned I = 0; I < Extra; ++I)
      C = Ctx.mkSeq(C, genCmd(Depth));
    return C;
  }

  const Cmd *genCmd(int Depth) {
    if (Depth <= 0)
      return maybeAnnotate(Ctx.mkAssign(var(), genIntExpr(1)));
    switch (pick(5)) {
    case 0:
      return maybeAnnotate(Ctx.mkAssign(var(), genIntExpr(2)));
    case 1:
      return maybeAnnotate(Ctx.mkPrint(genIntExpr(2)));
    case 2:
      return maybeAnnotate(Ctx.mkIf(genBoolExpr(1), genSeq(Depth - 1),
                                    genSeq(Depth - 1)));
    case 3: {
      // Bounded loop: k := <0..6>; while k > 0 do body; k := k - 1 end.
      Symbol K =
          Symbol::intern("k" + std::to_string(LoopCounter++));
      const Cmd *InitK = Ctx.mkAssign(K, intLit((int64_t)pick(7)));
      const Expr *Cond = Ctx.exprs().mkPrim2(
          Prim2Op::Gt, Ctx.exprs().mkVar(K), intLit(0));
      const Cmd *Dec = Ctx.mkAssign(
          K, Ctx.exprs().mkPrim2(Prim2Op::Sub, Ctx.exprs().mkVar(K),
                                 intLit(1)));
      const Cmd *Body = Ctx.mkSeq(genSeq(Depth - 1), Dec);
      return Ctx.mkSeq(InitK,
                       maybeAnnotate(Ctx.mkWhile(Cond, Body)));
    }
    default:
      return maybeAnnotate(Ctx.mkSkip());
    }
  }
};

inline const Cmd *genImpProgram(ImpContext &Ctx, unsigned Seed) {
  return ImpProgramGen(Ctx, Seed).gen();
}

} // namespace monsem::testing

#endif // MONSEM_TESTS_RANDOMIMPPROGRAM_H
